//! Cumulative ingest metrics, persisted as a sidecar file.
//!
//! The ingest tier's interesting latencies — how long a seal takes, how
//! long a document is durable-but-invisible, how long compaction runs —
//! happen in short-lived CLI processes, while the consumer (the serving
//! tier's `/metrics?format=prom` exposition) is a different, long-lived
//! process. The bridge is `ingest_metrics.json`: a
//! [`Registry`] persisted at full bucket fidelity
//! ([`Registry::to_persist_json`]) next to the manifest, reloaded on
//! every open so histograms keep accumulating across processes, and
//! rewritten atomically (tmp + rename) so readers never see a torn file.
//!
//! The sidecar holds only the histograms ingest alone can measure:
//!
//! * `seal_latency_seconds` — WAL record folded into a live segment.
//! * `time_to_visibility_seconds` — fsync start to segment visible.
//! * `compaction_duration_seconds` — one full compaction pass.
//!
//! Point-in-time gauges (`wal_backlog_bytes`, `wal_unsealed_records`,
//! `snapshot_generation`, `segments_open`) are *not* persisted — the
//! exposition computes them live from the WAL and manifest.
//!
//! A missing or corrupt sidecar degrades to an empty registry: metrics
//! are an observation, never a reason to fail ingestion.

use inspire_trace::Registry;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Sidecar file name inside an ingest directory.
pub const METRICS_FILE: &str = "ingest_metrics.json";

/// Handle on the sidecar: an in-memory [`Registry`] plus the directory
/// it persists into.
#[derive(Debug, Clone)]
pub struct IngestMetrics {
    dir: PathBuf,
    reg: Registry,
}

impl IngestMetrics {
    /// Load the sidecar under `dir`; a missing or unparsable file yields
    /// an empty registry.
    pub fn load(dir: &Path) -> IngestMetrics {
        IngestMetrics {
            dir: dir.to_path_buf(),
            reg: load_registry(dir).unwrap_or_default(),
        }
    }

    pub fn registry(&self) -> &Registry {
        &self.reg
    }

    /// Record `secs` into histogram `name` (stored in nanoseconds, like
    /// every registry histogram; the `_seconds` suffix is the exposition
    /// unit).
    pub fn observe_seconds(&mut self, name: &str, secs: f64) {
        self.reg
            .observe(name, Duration::from_secs_f64(secs.max(0.0)));
    }

    /// Atomically rewrite the sidecar.
    pub fn store(&self) -> io::Result<()> {
        let path = self.dir.join(METRICS_FILE);
        let tmp = self.dir.join(format!("{METRICS_FILE}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.reg.to_persist_json().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &path)
    }
}

/// Read-only load of the sidecar registry (the serving tier's view).
/// `None` when the file is absent or unreadable.
pub fn load_registry(dir: &Path) -> Option<Registry> {
    let text = std::fs::read_to_string(dir.join(METRICS_FILE)).ok()?;
    Registry::from_persist_json(&text).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sidecar_accumulates_across_loads() {
        let dir = std::env::temp_dir().join(format!("ingest_metrics_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();

        assert!(load_registry(&dir).is_none());
        let mut m = IngestMetrics::load(&dir);
        m.observe_seconds("seal_latency_seconds", 0.002);
        m.store().unwrap();

        // A second process observes more; counts accumulate.
        let mut m2 = IngestMetrics::load(&dir);
        m2.observe_seconds("seal_latency_seconds", 0.004);
        m2.observe_seconds("compaction_duration_seconds", 0.1);
        m2.store().unwrap();

        let reg = load_registry(&dir).expect("sidecar readable");
        let h = reg.histogram("seal_latency_seconds").unwrap();
        assert_eq!(h.count(), 2);
        assert!(reg.histogram("compaction_duration_seconds").is_some());

        // Corruption degrades to empty, never errors.
        std::fs::write(dir.join(METRICS_FILE), b"not json").unwrap();
        assert!(load_registry(&dir).is_none());
        assert_eq!(IngestMetrics::load(&dir).registry().summaries().len(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
