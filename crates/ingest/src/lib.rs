//! Log-structured incremental indexing over the engine's store format.
//!
//! The batch pipeline (scan → invert → signatures) rebuilds the world
//! on every corpus change. This crate makes the index *live*: documents
//! are appended to a CRC-covered write-ahead log ([`wal`]), folded by a
//! sealer into small immutable index segments ([`segment`]) that reuse
//! the engine's block-compressed posting codec, tracked by a crash-safe
//! generation manifest ([`manifest`]), and folded back together by a
//! compactor ([`compact`]). The serving tier unions base snapshot +
//! segments at read time (merge-on-read, in `inspire-serve`); because
//! segments are encoded with the batch pipeline's own rules and cover
//! disjoint ascending document ranges, served answers are bit-identical
//! to a from-scratch rebuild of the same logical corpus.
//!
//! Durability contract: [`IngestDir::append`] returns only after the
//! WAL record is fsynced — the seal that follows is a cached
//! convenience. On any later [`IngestDir::open`], the WAL is replayed:
//! a torn tail (crash mid-append) is truncated, and any durable record
//! the manifest's `wal_sealed_bytes` watermark does not cover is sealed
//! again, deterministically producing the same segment bytes.

pub mod compact;
pub mod manifest;
pub mod metrics;
pub mod segment;
pub mod wal;

pub use compact::{compact as compact_dir, CompactReport};
pub use manifest::{clean_strays, peek_generation, Manifest, SegmentRef, MANIFEST_FILE};
pub use metrics::{load_registry as load_ingest_metrics, IngestMetrics, METRICS_FILE};
pub use segment::{Segment, SegmentBuild, SEG_VERSION};
pub use wal::{Wal, WalRecord, WalReplay, WAL_FILE};

use corpus::Source;
use inspire_core::snapshot::EngineSnapshot;
use inspire_core::tokenize::{Tokenizer, TokenizerConfig};
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// One sealed mutation, with the numbers the ingest bench reports.
#[derive(Debug, Clone)]
pub struct AppendStats {
    /// Documents the batch added (0 for deletes).
    pub docs: u32,
    /// WAL bytes this record occupies (frame included).
    pub wal_bytes: u64,
    /// Size of the sealed segment file.
    pub segment_bytes: u64,
    /// Seconds spent in the fsynced WAL append.
    pub wal_s: f64,
    /// Seconds from WAL durability to the sealed segment being live.
    pub seal_s: f64,
    /// Manifest generation after the seal.
    pub generation: u64,
    pub segment_file: String,
}

/// What [`IngestDir::open`] had to repair.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Durable WAL records that were not yet sealed and got sealed now.
    pub sealed_records: usize,
    /// Torn-tail bytes truncated off the WAL.
    pub torn_bytes: u64,
    /// Stray files (crash leftovers) removed.
    pub removed_strays: usize,
}

fn now_unix() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn bad(dir: &Path, msg: String) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{}: {msg}", dir.display()),
    )
}

/// WAL backlog for `dir` without opening an [`IngestDir`]: bytes and
/// complete records past the manifest's sealed watermark. This is what
/// a serving-tier metrics scrape calls — read-only, no replay.
pub fn wal_backlog(dir: &Path) -> io::Result<(u64, u64)> {
    let m = Manifest::load(dir)?
        .ok_or_else(|| bad(dir, "not an ingest directory (no manifest)".into()))?;
    Wal::new(dir.join(WAL_FILE)).tail_after(m.wal_sealed_bytes)
}

/// A live ingest directory: WAL + manifest + segments (+ a base engine
/// snapshot referenced by absolute path). All mutation goes through
/// this handle; readers (the serving tier) only ever open the files the
/// manifest names.
pub struct IngestDir {
    dir: PathBuf,
    wal: Wal,
    manifest: Manifest,
    tokenizer: Tokenizer,
    /// Cumulative latency sidecar (see [`metrics`]); best-effort.
    metrics: IngestMetrics,
    /// Filled by [`IngestDir::open`] when it had work to do.
    pub recovery: RecoveryReport,
}

impl IngestDir {
    /// Initialize `dir` over `base` (an engine snapshot of at least the
    /// Index stage). Errors if `dir` already holds a manifest.
    pub fn create(dir: &Path, base: Option<&Path>) -> io::Result<IngestDir> {
        std::fs::create_dir_all(dir)?;
        if Manifest::load(dir)?.is_some() {
            return Err(bad(dir, "already an ingest directory".into()));
        }
        let (base_abs, base_docs) = match base {
            Some(p) => {
                let abs = std::fs::canonicalize(p)?;
                let snap = EngineSnapshot::open(&abs)?;
                (Some(abs), snap.meta().total_docs)
            }
            None => (None, 0),
        };
        let manifest = Manifest::new(base_abs, base_docs);
        manifest.store(dir)?;
        Ok(IngestDir {
            dir: dir.to_path_buf(),
            wal: Wal::new(dir.join(WAL_FILE)),
            manifest,
            tokenizer: Tokenizer::new(TokenizerConfig::default()),
            metrics: IngestMetrics::load(dir),
            recovery: RecoveryReport::default(),
        })
    }

    /// Open an existing ingest directory and make it consistent: remove
    /// stray files, truncate any torn WAL tail, and seal every durable
    /// WAL record the manifest watermark does not cover. After this
    /// returns, the directory serves exactly the durable prefix.
    pub fn open(dir: &Path) -> io::Result<IngestDir> {
        let manifest = Manifest::load(dir)?
            .ok_or_else(|| bad(dir, "not an ingest directory (no manifest)".into()))?;
        let mut me = IngestDir {
            dir: dir.to_path_buf(),
            wal: Wal::new(dir.join(WAL_FILE)),
            manifest,
            tokenizer: Tokenizer::new(TokenizerConfig::default()),
            metrics: IngestMetrics::load(dir),
            recovery: RecoveryReport::default(),
        };
        me.recovery.removed_strays = clean_strays(dir, &me.manifest)?.len();
        let replay = me.wal.replay()?;
        me.recovery.torn_bytes = replay.torn_bytes;
        me.wal.truncate_to(replay.durable_bytes)?;
        for (end, rec) in &replay.records {
            if *end > me.manifest.wal_sealed_bytes {
                me.seal_record(rec, *end)?;
                me.recovery.sealed_records += 1;
            }
        }
        Ok(me)
    }

    /// Open if initialized, otherwise create over `base`.
    pub fn open_or_create(dir: &Path, base: Option<&Path>) -> io::Result<IngestDir> {
        if Manifest::load(dir)?.is_some() {
            IngestDir::open(dir)
        } else {
            IngestDir::create(dir, base)
        }
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Total documents across base + segments.
    pub fn total_docs(&self) -> u32 {
        self.manifest.next_doc_base()
    }

    /// Append one record to the WAL and fsync, without sealing — the
    /// durability point. Exposed separately so crash tests (and the
    /// `--crash-after-wal` CLI hook) can die in the window between
    /// durability and visibility.
    pub fn append_wal(&mut self, rec: &WalRecord) -> io::Result<u64> {
        self.wal.append(rec)
    }

    /// Seal every durable WAL record past the manifest watermark.
    pub fn seal_pending(&mut self) -> io::Result<Vec<AppendStats>> {
        let replay = self.wal.replay()?;
        let mut out = Vec::new();
        for (end, rec) in &replay.records {
            if *end > self.manifest.wal_sealed_bytes {
                out.push(self.seal_record(rec, *end)?);
            }
        }
        Ok(out)
    }

    /// Fold one durable record into a segment and flip the manifest.
    fn seal_record(&mut self, rec: &WalRecord, wal_end: u64) -> io::Result<AppendStats> {
        let started = Instant::now();
        let wal_bytes = wal_end - self.manifest.wal_sealed_bytes;
        let build = match rec {
            WalRecord::AddBatch(src) => {
                segment::build_from_batch(src, self.manifest.next_doc_base(), &self.tokenizer)
            }
            WalRecord::Delete(ids) => {
                segment::build_tombstones(self.manifest.next_doc_base(), ids.clone())
            }
        };
        let file = self.manifest.next_segment_file();
        let segment_bytes = segment::write_segment(&self.dir, &file, &build)?;
        self.manifest.segments.push(SegmentRef {
            file: file.clone(),
            doc_base: build.doc_base,
            doc_count: build.doc_count,
        });
        self.manifest.next_seq += 1;
        self.manifest.generation += 1;
        self.manifest.wal_sealed_bytes = wal_end;
        self.manifest.last_seal_unix = now_unix();
        self.manifest.store(&self.dir)?;
        let seal_s = started.elapsed().as_secs_f64();
        self.metrics.observe_seconds("seal_latency_seconds", seal_s);
        self.metrics.store().ok(); // observational: a failed write never fails a seal
        Ok(AppendStats {
            docs: build.doc_count,
            wal_bytes,
            segment_bytes,
            wal_s: 0.0,
            seal_s,
            generation: self.manifest.generation,
            segment_file: file,
        })
    }

    /// Append one document batch: WAL-durable, then sealed and visible.
    pub fn append(&mut self, source: Source) -> io::Result<AppendStats> {
        let rec = WalRecord::AddBatch(source);
        let t0 = Instant::now();
        self.append_wal(&rec)?;
        let wal_s = t0.elapsed().as_secs_f64();
        let mut sealed = self.seal_pending()?;
        let mut stats = sealed
            .pop()
            .ok_or_else(|| bad(&self.dir, "appended record did not seal".into()))?;
        stats.wal_s = wal_s;
        self.observe_visibility(&stats);
        Ok(stats)
    }

    /// Tombstone existing documents by global id.
    pub fn delete(&mut self, ids: Vec<u32>) -> io::Result<AppendStats> {
        let limit = self.total_docs();
        if let Some(&out_of_range) = ids.iter().find(|&&d| d >= limit) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("cannot delete doc {out_of_range}: only {limit} documents exist"),
            ));
        }
        let rec = WalRecord::Delete(ids);
        let t0 = Instant::now();
        self.append_wal(&rec)?;
        let wal_s = t0.elapsed().as_secs_f64();
        let mut sealed = self.seal_pending()?;
        let mut stats = sealed
            .pop()
            .ok_or_else(|| bad(&self.dir, "delete record did not seal".into()))?;
        stats.wal_s = wal_s;
        self.observe_visibility(&stats);
        Ok(stats)
    }

    /// Record durability-to-visibility latency for one sealed mutation.
    fn observe_visibility(&mut self, stats: &AppendStats) {
        self.metrics
            .observe_seconds("time_to_visibility_seconds", stats.wal_s + stats.seal_s);
        self.metrics.store().ok();
    }

    /// Size and record count of the WAL tail not yet covered by the
    /// manifest watermark — the `wal_backlog_bytes` /
    /// `wal_unsealed_records` gauges a metrics scrape reports.
    pub fn wal_backlog(&self) -> io::Result<(u64, u64)> {
        self.wal.tail_after(self.manifest.wal_sealed_bytes)
    }

    /// Fold all segments into one (see [`compact`]). Reloads the
    /// manifest (and the metrics sidecar the compactor appended to) so
    /// this handle sees the new generation.
    pub fn compact(&mut self) -> io::Result<Option<CompactReport>> {
        let report = compact::compact(&self.dir)?;
        if report.is_some() {
            self.manifest = Manifest::load(&self.dir)?
                .ok_or_else(|| bad(&self.dir, "manifest vanished during compaction".into()))?;
            self.metrics = IngestMetrics::load(&self.dir);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::FormatKind;

    fn medline(name: &str, text: &str) -> Source {
        Source {
            name: name.into(),
            data: text.as_bytes().to_vec(),
            format: FormatKind::Medline,
        }
    }

    #[test]
    fn append_seal_recover_compact_lifecycle() {
        let dir = std::env::temp_dir().join(format!("ingest_life_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut ing = IngestDir::create(&dir, None).unwrap();
        let s1 = ing
            .append(medline(
                "a",
                "TI  - alpha beta\nAB  - gamma alpha words\n\n",
            ))
            .unwrap();
        assert_eq!(s1.docs, 1);
        assert_eq!(s1.generation, 1);

        // Crash window: durable but unsealed. A reopen must seal it.
        let rec = WalRecord::AddBatch(medline("b", "TI  - delta beta\n\n"));
        ing.append_wal(&rec).unwrap();
        drop(ing);
        let ing = IngestDir::open(&dir).unwrap();
        assert_eq!(ing.recovery.sealed_records, 1);
        assert_eq!(ing.manifest().segments.len(), 2);
        assert_eq!(ing.total_docs(), 2);

        // Torn tail: half a record appended, then the writer dies.
        let wal_path = dir.join(WAL_FILE);
        let mut raw = std::fs::read(&wal_path).unwrap();
        raw.extend_from_slice(&[42u8; 5]);
        std::fs::write(&wal_path, &raw).unwrap();
        let mut ing = IngestDir::open(&dir).unwrap();
        assert_eq!(ing.recovery.torn_bytes, 5);
        assert_eq!(ing.recovery.sealed_records, 0);
        assert_eq!(ing.total_docs(), 2);

        let report = ing.compact().unwrap().expect("two segments fold");
        assert_eq!(report.segments_before, 2);
        assert_eq!(ing.manifest().segments.len(), 1);
        assert!(ing.compact().unwrap().is_none());
        assert!(ing.delete(vec![99]).is_err());
        ing.delete(vec![0]).unwrap();
        assert_eq!(ing.manifest().segments.len(), 2);

        // The metrics sidecar accumulated across every seal, recovery
        // seal, and the compaction pass; the backlog gauge reads zero
        // because everything durable is sealed.
        let reg = load_ingest_metrics(&dir).expect("sidecar written");
        let seals = reg.histogram("seal_latency_seconds").expect("seal hist");
        assert_eq!(seals.count(), 3, "initial append + recovery seal + delete");
        assert!(reg.histogram("time_to_visibility_seconds").is_some());
        assert!(reg.histogram("compaction_duration_seconds").is_some());
        assert_eq!(ing.wal_backlog().unwrap(), (0, 0));
        assert_eq!(wal_backlog(&dir).unwrap(), (0, 0));
        std::fs::remove_dir_all(&dir).ok();
    }
}
