//! The write-ahead log: the durability point of incremental ingestion.
//!
//! Every mutation (a document batch, a set of deletes) is appended to
//! `wal.log` as one length-prefixed, CRC-covered record and fsynced
//! before the caller proceeds. Replay walks the file from byte 0 and
//! stops at the first sign of a torn tail — a header that does not fit,
//! a length that runs past EOF, or a payload whose CRC32 disagrees —
//! so a crash mid-write loses at most the record being written, never
//! an acknowledged one. Everything before the torn point is the
//! *durable prefix* and is recovered exactly.
//!
//! Record frame (all little-endian):
//!
//! ```text
//! [len: u32] [crc32(payload): u32] [payload: len bytes]
//! ```
//!
//! Payloads:
//!
//! ```text
//! tag 1 (AddBatch):  [1u8] [format: u8] [name_len: u32] [name] [source data]
//! tag 2 (Delete):    [2u8] [count: u32] [doc_id: u32 × count]
//! ```

use corpus::{FormatKind, Source};
use inspire_store::crc32;
use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// WAL file name inside an ingest directory.
pub const WAL_FILE: &str = "wal.log";

const TAG_ADD_BATCH: u8 = 1;
const TAG_DELETE: u8 = 2;

/// One durable mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A batch of documents to index, carried as a whole corpus source.
    AddBatch(Source),
    /// Global document ids to tombstone.
    Delete(Vec<u32>),
}

fn format_to_u8(f: FormatKind) -> u8 {
    match f {
        FormatKind::Medline => 0,
        FormatKind::TrecWeb => 1,
        FormatKind::Message => 2,
    }
}

fn format_from_u8(v: u8) -> Option<FormatKind> {
    match v {
        0 => Some(FormatKind::Medline),
        1 => Some(FormatKind::TrecWeb),
        2 => Some(FormatKind::Message),
        _ => None,
    }
}

fn encode_payload(rec: &WalRecord) -> Vec<u8> {
    match rec {
        WalRecord::AddBatch(src) => {
            let mut out = Vec::with_capacity(10 + src.name.len() + src.data.len());
            out.push(TAG_ADD_BATCH);
            out.push(format_to_u8(src.format));
            out.extend_from_slice(&(src.name.len() as u32).to_le_bytes());
            out.extend_from_slice(src.name.as_bytes());
            out.extend_from_slice(&src.data);
            out
        }
        WalRecord::Delete(ids) => {
            let mut out = Vec::with_capacity(5 + ids.len() * 4);
            out.push(TAG_DELETE);
            out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
            for id in ids {
                out.extend_from_slice(&id.to_le_bytes());
            }
            out
        }
    }
}

fn bad(path: &Path, msg: String) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{}: {msg}", path.display()),
    )
}

/// Decode a CRC-verified payload. Failure here is corruption the CRC
/// missed or a version skew — an error, not a torn tail.
fn decode_payload(path: &Path, payload: &[u8]) -> io::Result<WalRecord> {
    let tag = *payload
        .first()
        .ok_or_else(|| bad(path, "empty WAL payload".into()))?;
    match tag {
        TAG_ADD_BATCH => {
            if payload.len() < 6 {
                return Err(bad(path, "AddBatch payload shorter than its header".into()));
            }
            let format = format_from_u8(payload[1])
                .ok_or_else(|| bad(path, format!("unknown source format {}", payload[1])))?;
            let name_len = u32::from_le_bytes(payload[2..6].try_into().unwrap()) as usize;
            let data_at = 6 + name_len;
            if payload.len() < data_at {
                return Err(bad(path, "AddBatch name runs past the payload".into()));
            }
            let name = std::str::from_utf8(&payload[6..data_at])
                .map_err(|_| bad(path, "AddBatch source name is not UTF-8".into()))?
                .to_string();
            let data = payload[data_at..].to_vec();
            if std::str::from_utf8(&data).is_err() {
                return Err(bad(path, format!("AddBatch `{name}` data is not UTF-8")));
            }
            Ok(WalRecord::AddBatch(Source { name, data, format }))
        }
        TAG_DELETE => {
            if payload.len() < 5 {
                return Err(bad(path, "Delete payload shorter than its header".into()));
            }
            let count = u32::from_le_bytes(payload[1..5].try_into().unwrap()) as usize;
            if payload.len() != 5 + count * 4 {
                return Err(bad(
                    path,
                    format!("Delete payload length {} for {count} ids", payload.len()),
                ));
            }
            let ids = payload[5..]
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                .collect();
            Ok(WalRecord::Delete(ids))
        }
        other => Err(bad(path, format!("unknown WAL record tag {other}"))),
    }
}

/// A replayed log: the decoded durable prefix plus how much of the file
/// (if anything) was a torn tail.
#[derive(Debug)]
pub struct WalReplay {
    /// `(end_offset, record)` for each durable record, in append order.
    /// `end_offset` is the file offset one past the record's last byte —
    /// the manifest's `wal_sealed_bytes` watermark compares against it.
    pub records: Vec<(u64, WalRecord)>,
    /// File length of the durable prefix.
    pub durable_bytes: u64,
    /// Bytes past the durable prefix (0 for a clean log).
    pub torn_bytes: u64,
}

/// Append-only handle on a WAL file. Stateless between calls: every
/// append re-opens in append mode, writes one whole record, and fsyncs,
/// so a crashed writer never leaves the file in a state replay cannot
/// classify.
#[derive(Debug, Clone)]
pub struct Wal {
    path: PathBuf,
}

impl Wal {
    pub fn new(path: PathBuf) -> Wal {
        Wal { path }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current file length (0 if the log does not exist yet).
    pub fn len(&self) -> io::Result<u64> {
        match std::fs::metadata(&self.path) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e),
        }
    }

    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Append one record and fsync. Returns the file length after the
    /// append — the record's durable end offset.
    pub fn append(&self, rec: &WalRecord) -> io::Result<u64> {
        let payload = encode_payload(rec);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        let mut f = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        f.write_all(&frame)?;
        f.sync_all()?;
        Ok(f.metadata()?.len())
    }

    /// Decode the durable prefix and classify any torn tail. A missing
    /// file replays as empty.
    pub fn replay(&self) -> io::Result<WalReplay> {
        let bytes = match std::fs::read(&self.path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => Err(e)?,
        };
        let mut records = Vec::new();
        let mut at = 0usize;
        loop {
            if bytes.len() - at < 8 {
                break; // header torn off (or clean EOF when at == len)
            }
            let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
            let Some(end) = at.checked_add(8).and_then(|v| v.checked_add(len)) else {
                break;
            };
            if end > bytes.len() {
                break; // payload torn off
            }
            let payload = &bytes[at + 8..end];
            if crc32(payload) != crc {
                break; // payload half-written when the header landed
            }
            records.push((end as u64, decode_payload(&self.path, payload)?));
            at = end;
        }
        Ok(WalReplay {
            records,
            durable_bytes: at as u64,
            torn_bytes: (bytes.len() - at) as u64,
        })
    }

    /// Size and record count of the log tail past `watermark` (a record
    /// end offset, e.g. the manifest's `wal_sealed_bytes`). Walks frame
    /// headers only — no payload reads, no CRC checks — so a metrics
    /// scrape can measure backlog without replaying the log. Bytes
    /// include any torn tail; the record count covers complete frames.
    pub fn tail_after(&self, watermark: u64) -> io::Result<(u64, u64)> {
        use std::io::{Read, Seek, SeekFrom};
        let len = self.len()?;
        if len <= watermark {
            return Ok((0, 0));
        }
        let mut f = std::fs::File::open(&self.path)?;
        let mut at = watermark;
        let mut records = 0u64;
        let mut hdr = [0u8; 8];
        while len - at >= 8 {
            f.seek(SeekFrom::Start(at))?;
            f.read_exact(&mut hdr)?;
            let frame_len = u32::from_le_bytes(hdr[..4].try_into().unwrap()) as u64;
            let Some(end) = at.checked_add(8).and_then(|v| v.checked_add(frame_len)) else {
                break;
            };
            if end > len {
                break; // torn tail
            }
            records += 1;
            at = end;
        }
        Ok((len - watermark, records))
    }

    /// Discard everything past `durable_bytes` (the torn tail found by
    /// [`Wal::replay`]). No-op when the file is already that short.
    pub fn truncate_to(&self, durable_bytes: u64) -> io::Result<()> {
        if self.len()? <= durable_bytes {
            return Ok(());
        }
        let f = OpenOptions::new().write(true).open(&self.path)?;
        f.set_len(durable_bytes)?;
        f.sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(name: &str, text: &str) -> WalRecord {
        WalRecord::AddBatch(Source {
            name: name.to_string(),
            data: text.as_bytes().to_vec(),
            format: FormatKind::Medline,
        })
    }

    #[test]
    fn roundtrip_and_torn_tail_at_every_byte() {
        let dir = std::env::temp_dir().join(format!("wal_rt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal = Wal::new(dir.join(WAL_FILE));
        let recs = vec![
            batch("a.txt", "TI  - alpha\nAB  - one two\n"),
            WalRecord::Delete(vec![3, 9, 11]),
            batch("b.txt", "TI  - beta\nAB  - three four five\n"),
        ];
        let mut ends = Vec::new();
        for r in &recs {
            ends.push(wal.append(r).unwrap());
        }
        let full = std::fs::read(wal.path()).unwrap();
        let replay = wal.replay().unwrap();
        assert_eq!(replay.durable_bytes, full.len() as u64);
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(replay.records.len(), 3);
        for (i, (end, rec)) in replay.records.iter().enumerate() {
            assert_eq!(*end, ends[i]);
            assert_eq!(rec, &recs[i]);
        }

        // Truncate at every byte: replay must recover exactly the
        // records whose frames fit entirely below the cut.
        let torn = Wal::new(dir.join("torn.log"));
        for cut in 0..=full.len() {
            std::fs::write(torn.path(), &full[..cut]).unwrap();
            let r = torn.replay().unwrap();
            let durable = ends.iter().filter(|&&e| e <= cut as u64).count();
            assert_eq!(r.records.len(), durable, "cut at {cut}");
            let expect_durable = if durable == 0 { 0 } else { ends[durable - 1] };
            assert_eq!(r.durable_bytes, expect_durable, "cut at {cut}");
            assert_eq!(r.torn_bytes, cut as u64 - expect_durable, "cut at {cut}");
            torn.truncate_to(r.durable_bytes).unwrap();
            assert_eq!(torn.len().unwrap(), r.durable_bytes);
        }

        // Backlog tail walk: counts frames past a watermark without
        // decoding payloads, tolerating a torn tail.
        assert_eq!(wal.tail_after(0).unwrap(), (full.len() as u64, 3));
        assert_eq!(
            wal.tail_after(ends[0]).unwrap(),
            (full.len() as u64 - ends[0], 2)
        );
        assert_eq!(wal.tail_after(ends[2]).unwrap(), (0, 0));
        std::fs::write(torn.path(), &full[..full.len() - 3]).unwrap();
        let (tail_bytes, tail_recs) = torn.tail_after(ends[1]).unwrap();
        assert_eq!(tail_bytes, full.len() as u64 - 3 - ends[1]);
        assert_eq!(tail_recs, 0, "last frame is torn");

        // A flipped payload byte is a torn tail (CRC catches it), and
        // everything before the flip survives.
        let mut flipped = full.clone();
        let in_last = ends[1] as usize + 9;
        flipped[in_last] ^= 0x40;
        std::fs::write(torn.path(), &flipped).unwrap();
        let r = torn.replay().unwrap();
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.durable_bytes, ends[1]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
