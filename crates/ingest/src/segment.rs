//! Immutable index segments: one small `inspire-store` container per
//! sealed WAL batch.
//!
//! A segment is a self-contained inverted index over a contiguous run
//! of global document ids (`doc_base .. doc_base + doc_count`), encoded
//! with the exact same rules as the full engine snapshot — the
//! [`inspire_core::snapshot::encode_posting_sections`] codec shared
//! with the batch pipeline, saturated posting freqs, raw-frequency tf
//! sums, and per-distinct-doc df counts. That sharing is what makes
//! merge-on-read answers bit-identical to a from-scratch rebuild: the
//! union of base + segment postings for a term is byte-for-byte the
//! list a rebuild would have encoded.
//!
//! Sections: `smeta` (u64 ×4: segment version, doc_base, doc_count,
//! token total), `terms`/`termoff` (segment-local sorted vocabulary),
//! `postdir`/`postblk`/`postskp` (block-compressed postings over
//! **global** doc ids), `dfv`/`tfv` (varint stat deltas), and an
//! optional `tomb` (sorted global doc ids this segment deletes).

use corpus::Source;
use inspire_core::index::Posting;
use inspire_core::scan::tokenize_batch;
use inspire_core::snapshot::{encode_posting_sections, pair_to_posting, PostingsDir};
use inspire_core::tokenize::Tokenizer;
use inspire_store::{codec, Snapshot, SnapshotWriter};
use intern::{TermInterner, TermTable};
use std::io;
use std::path::Path;

/// Segment format version recorded in `smeta`.
pub const SEG_VERSION: u64 = 1;

/// An in-memory segment about to be written: the sealer and the
/// compactor both produce one of these and hand it to [`write_segment`].
pub struct SegmentBuild {
    pub doc_base: u32,
    pub doc_count: u32,
    pub tokens: u64,
    /// Segment-local sorted vocabulary.
    pub terms: TermTable,
    /// Per local term id, postings with **global** doc ids.
    pub lists: Vec<Vec<Posting>>,
    pub df: Vec<u32>,
    pub tf: Vec<u64>,
    /// Sorted global doc ids deleted by this segment.
    pub tombstones: Vec<u32>,
}

/// Tokenize one WAL batch into a segment. Per-record tokenization is
/// context-free (the scan pipeline's own invariant), so the postings,
/// df, and tf produced here match what a full rebuild over a corpus
/// ending with these records would compute for them.
pub fn build_from_batch(source: &Source, doc_base: u32, tokenizer: &Tokenizer) -> SegmentBuild {
    let mut interner = TermInterner::new();
    let docs = tokenize_batch(source, tokenizer, &mut interner);
    let n_terms = interner.len();

    // Segment-local canonical ids: lexicographic, like the global remap.
    let mut order: Vec<u32> = (0..n_terms as u32).collect();
    order.sort_unstable_by(|&a, &b| interner.bytes(a).cmp(interner.bytes(b)));
    let terms = TermTable::from_sorted(order.iter().map(|&i| interner.get(i)));
    let mut remap = vec![0u32; n_terms];
    for (tid, &iid) in order.iter().enumerate() {
        remap[iid as usize] = tid as u32;
    }

    let mut lists: Vec<Vec<Posting>> = vec![Vec::new(); n_terms];
    let mut df = vec![0u32; n_terms];
    let mut tf = vec![0u64; n_terms];
    let mut tokens = 0u64;
    let mut distinct: Vec<(u32, u32)> = Vec::new();
    for (i, doc) in docs.iter().enumerate() {
        let gdoc = doc_base + i as u32;
        tokens += doc.tokens as u64;
        distinct.clear();
        for f in &doc.fields {
            for &(iid, cnt) in &f.counts {
                let tid = remap[iid as usize];
                lists[tid as usize].push(Posting {
                    doc: gdoc,
                    field: f.field,
                    freq: cnt,
                });
                distinct.push((tid, cnt));
            }
        }
        // df counts each document once per term regardless of how many
        // fields it appears in; tf sums the raw (unsaturated) freqs —
        // both exactly as the counting pass of the invert stage does.
        distinct.sort_unstable_by_key(|&(t, _)| t);
        let mut j = 0;
        while j < distinct.len() {
            let t = distinct[j].0 as usize;
            let mut sum = 0u64;
            while j < distinct.len() && distinct[j].0 as usize == t {
                sum += distinct[j].1 as u64;
                j += 1;
            }
            df[t] += 1;
            tf[t] += sum;
        }
    }
    SegmentBuild {
        doc_base,
        doc_count: docs.len() as u32,
        tokens,
        terms,
        lists,
        df,
        tf,
        tombstones: Vec::new(),
    }
}

/// A tombstone-only segment: adds no documents, deletes `ids`.
pub fn build_tombstones(doc_base: u32, mut ids: Vec<u32>) -> SegmentBuild {
    ids.sort_unstable();
    ids.dedup();
    SegmentBuild {
        doc_base,
        doc_count: 0,
        tokens: 0,
        terms: TermTable::from_sorted(std::iter::empty()),
        lists: Vec::new(),
        df: Vec::new(),
        tf: Vec::new(),
        tombstones: ids,
    }
}

/// Write `b` as `dir/file`, via tmp + rename so a crash mid-write
/// leaves only a `.tmp` stray (cleaned on the next open), never a
/// half-written segment under a live name. Returns the file size.
pub fn write_segment(dir: &Path, file: &str, b: &SegmentBuild) -> io::Result<u64> {
    let tmp = dir.join(format!("{file}.tmp"));
    let enc = encode_posting_sections(b.terms.len(), &b.df, &b.tf, |t, posts| {
        posts.extend_from_slice(&b.lists[t]);
    });
    let mut w = SnapshotWriter::create(&tmp)?;
    w.add_u64s(
        "smeta",
        &[SEG_VERSION, b.doc_base as u64, b.doc_count as u64, b.tokens],
    )?;
    w.add_bytes("terms", b.terms.arena_bytes())?;
    w.add_u32s("termoff", b.terms.offsets())?;
    w.add_bytes("postdir", &enc.dir)?;
    w.add_packed("postblk", &enc.blk)?;
    w.add_skips("postskp", &enc.skips)?;
    w.add_bytes("dfv", &enc.dfv)?;
    w.add_bytes("tfv", &enc.tfv)?;
    if !b.tombstones.is_empty() {
        w.add_u32s("tomb", &b.tombstones)?;
    }
    let stats = w.finish()?;
    std::fs::File::open(&tmp)?.sync_all()?;
    std::fs::rename(&tmp, dir.join(file))?;
    if let Ok(d) = std::fs::File::open(dir) {
        d.sync_all().ok();
    }
    Ok(stats.total_bytes)
}

fn bad(source: &str, msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("{source}: {msg}"))
}

/// A loaded, validated segment. Checksums are verified at open (via the
/// store reader); postings stay compressed and are decoded per query.
pub struct Segment {
    snap: Snapshot,
    doc_base: u32,
    doc_count: u32,
    tokens: u64,
    terms: TermTable,
    dir: PostingsDir,
    df: Vec<u32>,
    tf: Vec<u64>,
    tombstones: Vec<u32>,
}

impl Segment {
    pub fn open(path: &Path) -> io::Result<Segment> {
        let snap = Snapshot::open(path)?;
        let src = snap.source().to_string();
        let meta = snap.require("smeta")?.as_u64s()?.to_vec();
        if meta.len() < 4 {
            return Err(bad(&src, format!("smeta has {} slots, need 4", meta.len())));
        }
        if meta[0] != SEG_VERSION {
            return Err(bad(
                &src,
                format!("segment version {} unsupported", meta[0]),
            ));
        }
        let (doc_base, doc_count, tokens) = (meta[1] as u32, meta[2] as u32, meta[3]);
        let terms = TermTable::from_parts(
            snap.require("terms")?.bytes().to_vec(),
            snap.require("termoff")?.as_u32s()?.to_vec(),
        )
        .map_err(|e| bad(&src, format!("vocabulary: {e}")))?;
        let vocab = terms.len();
        let dir = PostingsDir::parse(
            snap.require("postdir")?.bytes(),
            vocab,
            snap.require("postblk")?.as_packed()?.len(),
            snap.require("postskp")?.as_skips()?.len(),
        )
        .map_err(|e| bad(&src, e.to_string()))?;
        let dfv = snap.require("dfv")?.bytes();
        let tfv = snap.require("tfv")?.bytes();
        let mut df = Vec::with_capacity(vocab);
        let mut tf = Vec::with_capacity(vocab);
        let (mut at_d, mut at_t) = (0usize, 0usize);
        for _ in 0..vocab {
            df.push(codec::read_u32(dfv, &mut at_d).map_err(|e| bad(&src, format!("dfv: {e}")))?);
            tf.push(codec::read_u64(tfv, &mut at_t).map_err(|e| bad(&src, format!("tfv: {e}")))?);
        }
        if at_d != dfv.len() || at_t != tfv.len() {
            return Err(bad(&src, "trailing bytes in df/tf streams".into()));
        }
        let tombstones = match snap.section("tomb") {
            Some(s) => s.as_u32s()?.to_vec(),
            None => Vec::new(),
        };
        if tombstones.windows(2).any(|w| w[0] >= w[1]) {
            return Err(bad(&src, "tombstones not sorted/deduplicated".into()));
        }
        Ok(Segment {
            snap,
            doc_base,
            doc_count,
            tokens,
            terms,
            dir,
            df,
            tf,
            tombstones,
        })
    }

    pub fn doc_base(&self) -> u32 {
        self.doc_base
    }

    pub fn doc_count(&self) -> u32 {
        self.doc_count
    }

    /// One past the last global doc id this segment adds.
    pub fn doc_end(&self) -> u32 {
        self.doc_base + self.doc_count
    }

    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    pub fn terms(&self) -> &TermTable {
        &self.terms
    }

    pub fn vocab(&self) -> usize {
        self.terms.len()
    }

    pub fn df(&self, local: u32) -> u32 {
        self.df[local as usize]
    }

    pub fn tf(&self, local: u32) -> u64 {
        self.tf[local as usize]
    }

    pub fn tombstones(&self) -> &[u32] {
        &self.tombstones
    }

    pub fn total_postings(&self) -> u64 {
        self.dir.total_postings()
    }

    fn blk(&self) -> &[u8] {
        self.snap
            .section("postblk")
            .expect("validated at open")
            .as_packed()
            .expect("validated at open")
    }

    fn skips(&self) -> &[u64] {
        self.snap
            .section("postskp")
            .expect("validated at open")
            .as_skips()
            .expect("validated at open")
    }

    /// Append term `local`'s full posting list (global doc ids).
    pub fn postings_into(&self, local: u32, out: &mut Vec<Posting>) {
        let n = self.dir.count(local) as usize;
        if n == 0 {
            return;
        }
        let mut pairs = Vec::with_capacity(n);
        codec::decode_list(&self.blk()[self.dir.byte_range(local)], n, &mut pairs)
            .expect("CRC-validated segment postings decode");
        out.extend(pairs.iter().map(|&(k, v)| pair_to_posting(k, v)));
    }

    /// Append only postings with `doc ≥ min_doc`, seeking through the
    /// skip entries for multi-block lists.
    pub fn postings_from(&self, local: u32, min_doc: u32, out: &mut Vec<Posting>) {
        let n = self.dir.count(local) as usize;
        if n == 0 {
            return;
        }
        let mut pairs = Vec::new();
        codec::decode_from(
            &self.blk()[self.dir.byte_range(local)],
            n,
            &self.skips()[self.dir.skip_range(local)],
            min_doc,
            &mut pairs,
        )
        .expect("CRC-validated segment postings decode");
        out.extend(pairs.iter().map(|&(k, v)| pair_to_posting(k, v)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corpus::FormatKind;

    fn medline(name: &str, text: &str) -> Source {
        Source {
            name: name.into(),
            data: text.as_bytes().to_vec(),
            format: FormatKind::Medline,
        }
    }

    #[test]
    fn seal_and_reopen_roundtrip() {
        let dir = std::env::temp_dir().join(format!("seg_rt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let src = medline(
            "b.txt",
            "PMID- 1\nTI  - alpha beta alpha\nAB  - gamma alpha\n\nPMID- 2\nTI  - beta delta\n\n",
        );
        let tok = Tokenizer::new(Default::default());
        let b = build_from_batch(&src, 100, &tok);
        assert_eq!(b.doc_count, 2);
        write_segment(&dir, "seg-000001.iseg", &b).unwrap();
        let seg = Segment::open(&dir.join("seg-000001.iseg")).unwrap();
        assert_eq!(seg.doc_base(), 100);
        assert_eq!(seg.doc_end(), 102);
        assert_eq!(seg.vocab(), b.terms.len());
        let alpha = seg.terms().position("alpha").expect("alpha indexed") as u32;
        assert_eq!(seg.df(alpha), 1);
        assert_eq!(seg.tf(alpha), 3);
        let mut posts = Vec::new();
        seg.postings_into(alpha, &mut posts);
        assert!(posts.iter().all(|p| p.doc == 100));
        assert_eq!(posts.iter().map(|p| p.freq).sum::<u32>(), 3);
        let mut tail = Vec::new();
        seg.postings_from(alpha, 101, &mut tail);
        assert!(tail.is_empty());

        let t = build_tombstones(102, vec![7, 3, 7]);
        write_segment(&dir, "seg-000002.iseg", &t).unwrap();
        let tseg = Segment::open(&dir.join("seg-000002.iseg")).unwrap();
        assert_eq!(tseg.doc_count(), 0);
        assert_eq!(tseg.tombstones(), &[3, 7]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
