//! Background compaction: fold all live segments into one.
//!
//! Compaction is read-only over inputs and atomic at the manifest flip:
//! it writes one merged segment under a fresh (never-reused) sequence
//! number, flips the manifest to `generation + 1` listing only the
//! merged segment, then unlinks the inputs. A crash before the flip
//! leaves the merged file as a stray (removed at the next open); a
//! crash after the flip leaves the inputs as strays. Readers polling
//! the manifest see either the old segment list or the new one.
//!
//! Merge semantics match the serving tier's merge-on-read exactly:
//! segment doc ranges are disjoint and ascending, so per-term posting
//! lists concatenate in segment order; df/tf deltas add. Tombstones
//! aimed at documents **inside** the compacted range are resolved by
//! dropping those documents' postings; tombstones aimed below the range
//! (at base-snapshot documents) are carried into the merged segment.
//! Stat deltas intentionally keep counting tombstoned documents — the
//! read path filters postings but never rescales df/tf, so compaction
//! preserves served answers byte for byte.

use crate::manifest::{Manifest, SegmentRef};
use crate::segment::{write_segment, Segment, SegmentBuild};
use inspire_core::index::Posting;
use intern::TermTable;
use std::io;
use std::path::Path;

/// What one compaction pass did.
#[derive(Debug, Clone)]
pub struct CompactReport {
    pub segments_before: usize,
    pub segments_after: usize,
    pub generation: u64,
    pub bytes_written: u64,
    pub docs: u32,
    /// Postings dropped by resolving in-range tombstones.
    pub postings_dropped: u64,
}

fn bad(dir: &Path, msg: String) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{}: {msg}", dir.display()),
    )
}

/// Fold every live segment of `dir` into one. `Ok(None)` when there is
/// nothing to fold (zero or one segment).
pub fn compact(dir: &Path) -> io::Result<Option<CompactReport>> {
    let started = std::time::Instant::now();
    let Some(mut m) = Manifest::load(dir)? else {
        return Err(bad(dir, "not an ingest directory (no manifest)".into()));
    };
    if m.segments.len() <= 1 {
        return Ok(None);
    }
    let segs: Vec<Segment> = m
        .segments
        .iter()
        .map(|s| Segment::open(&dir.join(&s.file)))
        .collect::<io::Result<Vec<_>>>()?;
    let doc_base = segs[0].doc_base();
    let doc_end = segs.last().unwrap().doc_end();
    let doc_count: u32 = segs.iter().map(|s| s.doc_count()).sum();
    let tokens: u64 = segs.iter().map(|s| s.tokens()).sum();

    let mut tombs: Vec<u32> = segs
        .iter()
        .flat_map(|s| s.tombstones().iter().copied())
        .collect();
    tombs.sort_unstable();
    tombs.dedup();
    let resolved = |d: u32| (doc_base..doc_end).contains(&d) && tombs.binary_search(&d).is_ok();
    let carried: Vec<u32> = tombs
        .iter()
        .copied()
        .filter(|&d| !(doc_base..doc_end).contains(&d))
        .collect();

    // Sorted union of the segment vocabularies, remembering where each
    // merged term lives. Ties group by segment order, which is doc order.
    let mut keyed: Vec<(&str, usize, u32)> = Vec::new();
    for (si, seg) in segs.iter().enumerate() {
        for (local, term) in seg.terms().iter().enumerate() {
            keyed.push((term, si, local as u32));
        }
    }
    keyed.sort_unstable_by(|a, b| a.0.as_bytes().cmp(b.0.as_bytes()).then(a.1.cmp(&b.1)));

    let mut vocab: Vec<&str> = Vec::new();
    let mut lists: Vec<Vec<Posting>> = Vec::new();
    let mut df: Vec<u32> = Vec::new();
    let mut tf: Vec<u64> = Vec::new();
    let mut dropped = 0u64;
    let mut at = 0usize;
    let mut scratch: Vec<Posting> = Vec::new();
    while at < keyed.len() {
        let term = keyed[at].0;
        let mut list = Vec::new();
        let (mut d_sum, mut t_sum) = (0u32, 0u64);
        while at < keyed.len() && keyed[at].0 == term {
            let (_, si, local) = keyed[at];
            d_sum += segs[si].df(local);
            t_sum += segs[si].tf(local);
            scratch.clear();
            segs[si].postings_into(local, &mut scratch);
            for &p in &scratch {
                if resolved(p.doc) {
                    dropped += 1;
                } else {
                    list.push(p);
                }
            }
            at += 1;
        }
        vocab.push(term);
        lists.push(list);
        df.push(d_sum);
        tf.push(t_sum);
    }

    let build = SegmentBuild {
        doc_base,
        doc_count,
        tokens,
        terms: TermTable::from_sorted(vocab.iter().copied()),
        lists,
        df,
        tf,
        tombstones: carried,
    };
    let file = m.next_segment_file();
    let bytes_written = write_segment(dir, &file, &build)?;

    let old: Vec<String> = m.segments.iter().map(|s| s.file.clone()).collect();
    m.segments = vec![SegmentRef {
        file,
        doc_base,
        doc_count,
    }];
    m.next_seq += 1;
    m.generation += 1;
    m.store(dir)?;
    for f in &old {
        std::fs::remove_file(dir.join(f)).ok();
    }
    let mut metrics = crate::metrics::IngestMetrics::load(dir);
    metrics.observe_seconds(
        "compaction_duration_seconds",
        started.elapsed().as_secs_f64(),
    );
    metrics.store().ok();
    Ok(Some(CompactReport {
        segments_before: old.len(),
        segments_after: 1,
        generation: m.generation,
        bytes_written,
        docs: doc_count,
        postings_dropped: dropped,
    }))
}
