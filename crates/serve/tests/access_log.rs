//! Access-log schema stability under `INSPIRE_LOG=info`.
//!
//! This test binary sets `INSPIRE_LOG=info` *before any logging call*
//! (the trace crate reads the variable once into a `OnceLock`), so it
//! lives alone in its own integration-test binary: the rest of the
//! suite asserts the logging-disabled behavior and must not share a
//! process with this one.

use corpus::CorpusSpec;
use inspire_core::pipeline::run_engine;
use inspire_core::EngineConfig;
use inspire_serve::{http, ServeConfig, ServeState, Server};
use inspire_trace::json::Value;
use inspire_trace::reqspan::parse_access_line;
use perfmodel::CostModel;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(10);

fn build_snapshot() -> PathBuf {
    let path = std::env::temp_dir().join(format!("va-accesslog-{}.isnap", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let src = CorpusSpec {
        source_bytes: 8 * 1024,
        ..CorpusSpec::pubmed(128 * 1024, 37)
    }
    .generate();
    let cfg = EngineConfig {
        snapshot_out: Some(path.clone()),
        ..EngineConfig::for_testing()
    };
    run_engine(2, Arc::new(CostModel::zero()), &src, &cfg);
    path
}

fn pick_term(state: &ServeState) -> String {
    let len = state.terms.len();
    for k in 0..len {
        let t = state.terms.get((len / 3 + k) % len);
        if t.len() >= 2
            && t.chars().all(|c| c.is_ascii_alphanumeric())
            && !matches!(t, "and" | "or" | "not")
        {
            return t.to_string();
        }
    }
    panic!("no usable term");
}

/// The exact field set of one access-log line. A schema change here is
/// a breaking change for downstream log pipelines — update DESIGN.md
/// §12 alongside this list.
const FIELDS: [&str; 10] = [
    "bytes",
    "cache_hit",
    "detail",
    "epoch",
    "generation",
    "id",
    "route",
    "stages",
    "status",
    "total_us",
];

#[test]
fn every_request_emits_one_schema_stable_json_line() {
    // Must precede the first call into inspire_trace::log (the level is
    // latched in a OnceLock); this binary holds only this test.
    std::env::set_var("INSPIRE_LOG", "info");

    let path = build_snapshot();
    let state = Arc::new(ServeState::load(&path).expect("load snapshot"));
    let term = pick_term(&state);
    let log_path = std::env::temp_dir().join(format!("va-access-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&log_path);

    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        access_log: Some(log_path.clone()),
        ..ServeConfig::default()
    };
    let server = Server::start(Arc::clone(&state), &cfg).expect("start server");
    let addr = server.local_addr();

    // All five query kinds, an admin route, a cache hit, and a 404:
    // every request — success, error, admin — gets exactly one line.
    let targets = [
        format!("/term?t={term}"),
        format!("/query?q={term}"),
        format!("/search?q={term}&top=5"),
        "/cluster?c=0".to_string(),
        "/rect?x0=-1e6&y0=-1e6&x1=1e6&y1=1e6".to_string(),
        "/healthz".to_string(),
        format!("/search?q={term}&top=5"),
        "/nope".to_string(),
    ];
    for t in &targets {
        let _ = http::get(addr, t, TIMEOUT).unwrap();
    }
    server.shutdown();

    let text = std::fs::read_to_string(&log_path).expect("access log exists");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), targets.len(), "one line per request:\n{text}");

    let mut ids = BTreeSet::new();
    let mut by_detail = std::collections::BTreeMap::new();
    for line in &lines {
        let v = parse_access_line(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
        let Value::Obj(map) = &v else {
            panic!("line is not an object: {line}")
        };
        let keys: Vec<&str> = map.keys().map(|k| k.as_str()).collect();
        assert_eq!(keys, FIELDS, "field set drifted in {line}");
        let id = v.get("id").and_then(|x| x.as_f64()).unwrap();
        assert!(ids.insert(id as u64), "duplicate request id {id}");
        let detail = v
            .get("detail")
            .and_then(|x| x.as_str())
            .unwrap()
            .to_string();
        by_detail.insert(detail, v.clone());
    }

    // Spot-check semantics, not just shape.
    let search = &by_detail[&format!("/search?q={term}&top=5")];
    assert_eq!(search.get("status").and_then(|x| x.as_f64()), Some(200.0));
    assert_eq!(
        search.get("route").and_then(|x| x.as_str()),
        Some("/search")
    );
    assert!(search.get("bytes").and_then(|x| x.as_f64()).unwrap() > 0.0);
    assert!(search.get("total_us").and_then(|x| x.as_f64()).unwrap() > 0.0);
    // The repeated /search was answered from cache (last write to the
    // by_detail slot is the second, cache-hit request).
    assert_eq!(search.get("cache_hit"), Some(&Value::Bool(true)));
    assert!(
        search
            .get("stages")
            .and_then(|s| s.get("cache_probe"))
            .is_some(),
        "hit still records its cache_probe stage"
    );

    let miss = &by_detail[&format!("/term?t={term}")];
    assert_eq!(miss.get("cache_hit"), Some(&Value::Bool(false)));
    assert!(
        miss.get("stages")
            .and_then(|s| s.get("rank_merge"))
            .is_some(),
        "miss records execution stages"
    );

    let not_found = &by_detail["/nope"];
    assert_eq!(
        not_found.get("status").and_then(|x| x.as_f64()),
        Some(404.0)
    );
    let health = &by_detail["/healthz"];
    assert_eq!(health.get("status").and_then(|x| x.as_f64()), Some(200.0));
    assert_eq!(health.get("bytes").and_then(|x| x.as_f64()), Some(3.0));

    let _ = std::fs::remove_file(&log_path);
    let _ = std::fs::remove_file(&path);
}
