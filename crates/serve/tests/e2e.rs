//! End-to-end serving tests over real loopback sockets.
//!
//! Each test builds a tiny final-stage snapshot with the actual engine
//! pipeline, loads it into a [`ServeState`], starts a [`Server`] on an
//! ephemeral port, and talks to it with the crate's own blocking HTTP
//! client (plus raw `TcpStream`s for the malformed-input cases). The
//! central assertion: every body the server returns is byte-identical
//! to what the in-process [`execute`] path — the same code behind
//! `vaengine query --json` — produces for the same request.

use corpus::CorpusSpec;
use inspire_core::pipeline::run_engine;
use inspire_core::EngineConfig;
use inspire_serve::request::split_target;
use inspire_serve::{execute, http, ServeConfig, ServeRequest, ServeState, Server};
use perfmodel::CostModel;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(10);

fn build_snapshot(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("va-serve-{}-{tag}.isnap", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let src = CorpusSpec {
        source_bytes: 8 * 1024,
        ..CorpusSpec::pubmed(128 * 1024, 29)
    }
    .generate();
    let cfg = EngineConfig {
        snapshot_out: Some(path.clone()),
        ..EngineConfig::for_testing()
    };
    run_engine(2, Arc::new(CostModel::zero()), &src, &cfg);
    path
}

fn start(tag: &str, workers: usize) -> (Arc<ServeState>, Server, SocketAddr, PathBuf) {
    let path = build_snapshot(tag);
    let state = Arc::new(ServeState::load(&path).expect("load snapshot"));
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        cache_capacity: 64,
        queue_depth: 64,
        ..ServeConfig::default()
    };
    let server = Server::start(Arc::clone(&state), &cfg).expect("start server");
    let addr = server.local_addr();
    (state, server, addr, path)
}

/// Plain-word terms from the snapshot vocabulary, skipping anything the
/// boolean grammar would read as an operator.
fn pick_terms(state: &ServeState, n: usize) -> Vec<String> {
    let len = state.terms.len();
    assert!(len > 0, "empty vocabulary");
    let mut out = Vec::new();
    for k in 0..len * 2 {
        let t = state.terms.get((len / 7 + k) % len);
        if t.len() >= 2
            && t.chars().all(|c| c.is_ascii_alphanumeric())
            && !matches!(t, "and" | "or" | "not")
            && !out.iter().any(|o| o == t)
        {
            out.push(t.to_string());
            if out.len() == n {
                return out;
            }
        }
    }
    panic!("not enough usable terms in vocabulary ({len} total)");
}

/// A mixed-kind target list exercising every route.
fn targets(state: &ServeState) -> Vec<String> {
    let t = pick_terms(state, 6);
    vec![
        format!("/term?t={}", t[0]),
        format!("/term?t={}&top=3", t[1]),
        format!("/query?q={}+AND+{}", t[0], t[2]),
        format!("/query?q={}+OR+{}&top=7", t[3], t[4]),
        format!("/search?q={}+{}&top=5", t[2], t[5]),
        "/cluster?c=0&top=8".to_string(),
        "/rect?x0=-1e6&y0=-1e6&x1=1e6&y1=1e6&top=20".to_string(),
    ]
}

/// The single-shot path: what `vaengine query --json` prints.
fn oracle(state: &ServeState, target: &str) -> String {
    let (path, params) = split_target(target);
    let req = ServeRequest::parse(path, &params).expect("oracle parse");
    execute(state, &req).expect("oracle execute")
}

/// Send raw bytes, return the response status (0 when unparseable).
fn raw_status(addr: SocketAddr, bytes: &[u8]) -> u16 {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(TIMEOUT)).unwrap();
    s.write_all(bytes).expect("write");
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).expect("read");
    http::parse_response(&buf).map(|r| r.status).unwrap_or(0)
}

#[test]
fn concurrent_served_bodies_match_single_shot_bodies() {
    let (state, server, addr, path) = start("concurrent", 4);
    let health = http::get(addr, "/healthz", TIMEOUT).unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "ok\n");

    let ts = targets(&state);
    let want: Vec<String> = ts.iter().map(|t| oracle(&state, t)).collect();
    let clients = 8;
    std::thread::scope(|s| {
        for _ in 0..clients {
            s.spawn(|| {
                for (t, w) in ts.iter().zip(&want) {
                    let resp = http::get(addr, t, TIMEOUT).expect(t);
                    assert_eq!(resp.status, 200, "{t}: {}", resp.body);
                    assert_eq!(&resp.body, w, "served body diverged for {t}");
                    assert_eq!(resp.header("content-type"), Some("application/json"));
                }
            });
        }
    });

    let summary = server.shutdown();
    assert_eq!(summary.served, 1 + (clients * ts.len()) as u64);
    assert_eq!(summary.errors, 0);
    assert_eq!(summary.rejected_429, 0);
    // 8 clients × 7 targets with only 7 distinct cache keys: almost
    // everything after the first pass is a hit.
    assert!(summary.cache.hits > 0, "no cache hits: {:?}", summary.cache);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn second_identical_query_is_served_from_cache() {
    let (state, server, addr, path) = start("cache", 2);
    let term = &pick_terms(&state, 1)[0];
    let target = format!("/search?q={term}");

    let first = http::get(addr, &target, TIMEOUT).unwrap();
    assert_eq!(first.status, 200);
    let m1 = http::get(addr, "/metrics", TIMEOUT).unwrap();
    let v1 = inspire_trace::json::parse(&m1.body).expect("metrics parse");
    let hits_before = v1
        .get("cache")
        .and_then(|c| c.get("hits"))
        .and_then(|h| h.as_f64())
        .unwrap();

    let second = http::get(addr, &target, TIMEOUT).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(second.body, first.body, "cached body diverged");
    // An equivalent spelling must normalize onto the same cache entry.
    let spelled = format!("/search?q={}", term.to_ascii_uppercase());
    let third = http::get(addr, &spelled, TIMEOUT).unwrap();
    assert_eq!(third.body, first.body, "normalized spelling diverged");

    let m2 = http::get(addr, "/metrics", TIMEOUT).unwrap();
    let v2 = inspire_trace::json::parse(&m2.body).expect("metrics parse");
    let cache = v2.get("cache").unwrap();
    let hits_after = cache.get("hits").and_then(|h| h.as_f64()).unwrap();
    assert_eq!(hits_after, hits_before + 2.0);
    assert!(cache.get("hit_rate").and_then(|h| h.as_f64()).unwrap() > 0.0);
    // Per-kind latency histograms cover the three /search requests.
    let hists = v2.get("histograms").and_then(|h| h.as_arr()).unwrap();
    let search = hists
        .iter()
        .find(|h| h.get("name").and_then(|n| n.as_str()) == Some("serve_search_seconds"))
        .expect("serve_search_seconds histogram");
    assert_eq!(search.get("count").and_then(|c| c.as_f64()), Some(3.0));
    assert!(search.get("p50_ns").and_then(|p| p.as_f64()).unwrap() > 0.0);
    assert!(
        search.get("p99_ns").and_then(|p| p.as_f64()).unwrap()
            >= search.get("p50_ns").and_then(|p| p.as_f64()).unwrap()
    );

    let summary = server.shutdown();
    assert_eq!(summary.cache.hits, hits_before as u64 + 2);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn slow_log_captures_an_induced_slow_query() {
    let (state, server, addr, path) = start("slow", 2);

    // Induce the slowest query this snapshot can serve: cold cache, a
    // wide OR over many vocabulary terms, large top.
    let terms = pick_terms(&state, 8);
    let target = format!("/query?q={}&top=1000", terms.join("+OR+"));
    let resp = http::get(addr, &target, TIMEOUT).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    // A couple of unremarkable requests around it.
    assert_eq!(http::get(addr, "/healthz", TIMEOUT).unwrap().status, 200);
    let cheap = format!("/term?t={}&top=1", terms[0]);
    assert_eq!(http::get(addr, &cheap, TIMEOUT).unwrap().status, 200);

    let slow = http::get(addr, "/debug/slow", TIMEOUT).unwrap();
    assert_eq!(slow.status, 200);
    assert_eq!(slow.header("content-type"), Some("application/json"));
    let v = inspire_trace::json::parse(&slow.body).expect("slow JSON parses");
    assert!(v.get("retained").and_then(|x| x.as_f64()).unwrap() >= 1.0);
    let entries = v.get("slow").and_then(|s| s.as_arr()).unwrap();
    let tl = entries
        .iter()
        .find(|t| t.get("detail").and_then(|d| d.as_str()) == Some(target.as_str()))
        .expect("induced slow query retained in /debug/slow");
    assert_eq!(tl.get("status").and_then(|x| x.as_f64()), Some(200.0));
    assert_eq!(
        tl.get("cache_hit"),
        Some(&inspire_trace::json::Value::Bool(false)),
        "cold-cache query must be a miss"
    );
    // Per-stage micros must account for the request: the stage sum is
    // within 10% of the measured wall total (small fixed gaps — cache
    // key build, registry observe — are all that's uncovered).
    let total = tl.get("total_us").and_then(|x| x.as_f64()).unwrap();
    let stages = tl.get("stages").expect("stages object");
    let stage_sum: f64 = match stages {
        inspire_trace::json::Value::Obj(m) => m.values().filter_map(|v| v.as_f64()).sum(),
        other => panic!("stages not an object: {other:?}"),
    };
    assert!(total > 0.0);
    assert!(
        (total - stage_sum).abs() <= total * 0.10 + 200.0,
        "stage micros {stage_sum} vs wall total {total}"
    );
    for name in [
        "parse",
        "cache_probe",
        "postings_decode",
        "rank_merge",
        "serialize",
    ] {
        assert!(
            stages.get(name).and_then(|x| x.as_f64()).is_some(),
            "missing stage {name}"
        );
    }

    // The Chrome-trace export of the same ring validates structurally.
    let chrome = http::get(addr, "/debug/slow?format=chrome", TIMEOUT).unwrap();
    assert_eq!(chrome.status, 200);
    let sum = inspire_trace::chrome::validate_chrome_json(&chrome.body)
        .expect("slow-log chrome trace validates");
    assert!(sum.lanes >= 1);
    assert!(sum.spans > sum.lanes, "each lane has request + stage spans");

    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn prometheus_exposition_negotiates_by_format_param() {
    let (state, server, addr, path) = start("prom", 2);
    let term = &pick_terms(&state, 1)[0];
    assert_eq!(
        http::get(addr, &format!("/search?q={term}"), TIMEOUT)
            .unwrap()
            .status,
        200
    );

    // Default stays JSON — the smoke tests byte-compare this shape.
    let json = http::get(addr, "/metrics", TIMEOUT).unwrap();
    assert_eq!(json.header("content-type"), Some("application/json"));
    inspire_trace::json::parse(&json.body).expect("JSON metrics parse");

    let prom = http::get(addr, "/metrics?format=prom", TIMEOUT).unwrap();
    assert_eq!(prom.status, 200);
    assert_eq!(
        prom.header("content-type"),
        Some("text/plain; version=0.0.4")
    );
    for required in [
        "serve_requests_total",
        "serve_errors_total",
        "serve_cache_hits_total",
        "serve_cache_misses_total",
        "serve_uptime_seconds",
        "snapshot_generation",
        "serve_search_seconds_count",
        "serve_request_seconds_sum",
    ] {
        assert!(
            prom.body.lines().any(|l| l.starts_with(required)),
            "missing {required} in prom exposition:\n{}",
            prom.body
        );
    }
    // Every sample family carries a TYPE line.
    for line in prom.body.lines().filter(|l| !l.starts_with('#')) {
        let metric = line.split(['{', ' ']).next().unwrap();
        let family = metric
            .strip_suffix("_sum")
            .or_else(|| metric.strip_suffix("_count"))
            .unwrap_or(metric);
        assert!(
            prom.body.contains(&format!("# TYPE {family} ")),
            "no TYPE for {metric}"
        );
    }

    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn malformed_requests_get_clean_error_responses() {
    let (_state, server, addr, path) = start("errors", 2);

    assert_eq!(http::get(addr, "/nope", TIMEOUT).unwrap().status, 404);
    assert_eq!(http::get(addr, "/term", TIMEOUT).unwrap().status, 400);
    assert_eq!(
        http::get(addr, "/rect?x0=nan&y0=0&x1=1&y1=1", TIMEOUT)
            .unwrap()
            .status,
        400
    );
    assert_eq!(
        http::get(addr, "/term?t=x&top=0", TIMEOUT).unwrap().status,
        400
    );
    // Error bodies are parseable JSON with the status echoed.
    let resp = http::get(addr, "/cluster?c=999999", TIMEOUT).unwrap();
    assert_eq!(resp.status, 400);
    let v = inspire_trace::json::parse(&resp.body).expect("error body parses");
    assert_eq!(v.get("status").and_then(|s| s.as_f64()), Some(400.0));

    // Below the parser: garbage request lines, wrong methods, oversized
    // heads. The server must answer with a status, never hang or die.
    assert_eq!(raw_status(addr, b"BLARG\r\n\r\n"), 400);
    assert_eq!(raw_status(addr, b"GET /healthz SMTP/1.0\r\n\r\n"), 400);
    assert_eq!(raw_status(addr, b"POST /term?t=x HTTP/1.1\r\n\r\n"), 405);
    let mut huge = b"GET /healthz HTTP/1.1\r\n".to_vec();
    while huge.len() <= http::MAX_HEAD_BYTES {
        huge.extend_from_slice(b"X-Filler: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
    }
    assert_eq!(raw_status(addr, &huge), 413);

    // And it still serves fine afterwards.
    assert_eq!(http::get(addr, "/healthz", TIMEOUT).unwrap().status, 200);
    let summary = server.shutdown();
    assert_eq!(summary.errors, 9);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn graceful_shutdown_drains_and_frees_the_port() {
    let (state, server, addr, path) = start("shutdown", 2);
    let ts = targets(&state);
    for t in &ts {
        assert_eq!(http::get(addr, t, TIMEOUT).unwrap().status, 200);
    }
    let summary = server.shutdown();
    assert_eq!(summary.served, ts.len() as u64);
    assert_eq!(summary.errors, 0);

    // The listener is gone: the exact port rebinds cleanly.
    let rebind = std::net::TcpListener::bind(addr);
    assert!(rebind.is_ok(), "port still held after shutdown: {rebind:?}");
    let _ = std::fs::remove_file(&path);
}
