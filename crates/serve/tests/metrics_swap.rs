//! Metrics consistency across hot state swaps, and the access log's
//! bit-invisibility when logging is disabled.
//!
//! Drives requests against a server, flips the serving state with
//! [`Server::swap_state`] mid-run, and checks that the observability
//! plane stays coherent: counters only ever grow, the latency
//! histograms lose no samples across the flip, and every `/debug/slow`
//! timeline records the generation (and epoch) of the state it actually
//! executed against — not the one serving when it was scraped.

use corpus::CorpusSpec;
use inspire_core::pipeline::run_engine;
use inspire_core::EngineConfig;
use inspire_serve::{http, ServeConfig, ServeState, Server};
use inspire_trace::json::{parse, Value};
use perfmodel::CostModel;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(10);

fn build_snapshot(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("va-swap-{}-{tag}.isnap", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let src = CorpusSpec {
        source_bytes: 8 * 1024,
        ..CorpusSpec::pubmed(128 * 1024, 31)
    }
    .generate();
    let cfg = EngineConfig {
        snapshot_out: Some(path.clone()),
        ..EngineConfig::for_testing()
    };
    run_engine(2, Arc::new(CostModel::zero()), &src, &cfg);
    path
}

/// A usable query term from the snapshot vocabulary.
fn pick_term(state: &ServeState) -> String {
    let len = state.terms.len();
    for k in 0..len {
        let t = state.terms.get((len / 3 + k) % len);
        if t.len() >= 2
            && t.chars().all(|c| c.is_ascii_alphanumeric())
            && !matches!(t, "and" | "or" | "not")
        {
            return t.to_string();
        }
    }
    panic!("no usable term");
}

fn served_count(addr: std::net::SocketAddr) -> (f64, f64) {
    let m = http::get(addr, "/metrics", TIMEOUT).unwrap();
    let v = parse(&m.body).expect("metrics parse");
    let served = v
        .get("requests")
        .and_then(|r| r.get("served"))
        .and_then(|x| x.as_f64())
        .unwrap();
    let hist_count = v
        .get("histograms")
        .and_then(|h| h.as_arr())
        .and_then(|hists| {
            hists
                .iter()
                .find(|h| h.get("name").and_then(|n| n.as_str()) == Some("serve_request_seconds"))
        })
        .and_then(|h| h.get("count"))
        .and_then(|c| c.as_f64())
        .unwrap_or(0.0);
    (served, hist_count)
}

#[test]
fn counters_and_timelines_stay_consistent_across_swaps() {
    let path = build_snapshot("flip");
    let mut s1 = ServeState::load(&path).expect("load snapshot");
    s1.generation = 1;
    let term = pick_term(&s1);
    let mut s2 = ServeState::load(&path).expect("load snapshot");
    s2.generation = 2;

    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        cache_capacity: 64,
        queue_depth: 64,
        ..ServeConfig::default()
    };
    let server = Server::start(Arc::new(s1), &cfg).expect("start server");
    let addr = server.local_addr();
    assert_eq!(server.generation(), 1);

    // Phase 1: distinct targets against generation 1.
    let phase1: Vec<String> = (1..=4).map(|n| format!("/term?t={term}&top={n}")).collect();
    for t in &phase1 {
        assert_eq!(http::get(addr, t, TIMEOUT).unwrap().status, 200, "{t}");
    }
    let (served1, hist1) = served_count(addr);
    assert!(served1 >= phase1.len() as f64);
    assert_eq!(hist1, phase1.len() as f64, "histogram lost samples");

    // Hot swap to generation 2; in-flight accounting must not reset.
    server.swap_state(Arc::new(s2));
    assert_eq!(server.generation(), 2);

    let phase2: Vec<String> = (5..=8).map(|n| format!("/term?t={term}&top={n}")).collect();
    for t in &phase2 {
        assert_eq!(http::get(addr, t, TIMEOUT).unwrap().status, 200, "{t}");
    }
    let (served2, hist2) = served_count(addr);
    assert!(served2 > served1, "served counter went backwards");
    assert_eq!(
        hist2,
        (phase1.len() + phase2.len()) as f64,
        "histogram count must keep accumulating across the swap"
    );

    // Every retained timeline names the generation (and epoch) it
    // executed against, keyed by request detail.
    let slow = http::get(addr, "/debug/slow", TIMEOUT).unwrap();
    let v = parse(&slow.body).expect("slow parse");
    let entries = v.get("slow").and_then(|s| s.as_arr()).unwrap();
    let lookup = |detail: &str, key: &str| -> f64 {
        entries
            .iter()
            .find(|t| t.get("detail").and_then(|d| d.as_str()) == Some(detail))
            .unwrap_or_else(|| panic!("{detail} not retained"))
            .get(key)
            .and_then(|x| x.as_f64())
            .unwrap()
    };
    for t in &phase1 {
        assert_eq!(lookup(t, "generation"), 1.0, "{t}");
        assert_eq!(lookup(t, "epoch"), 0.0, "{t}");
    }
    for t in &phase2 {
        assert_eq!(lookup(t, "generation"), 2.0, "{t}");
        assert_eq!(lookup(t, "epoch"), 1.0, "{t}");
    }

    let summary = server.shutdown();
    assert_eq!(summary.errors, 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn access_log_is_bit_invisible_when_logging_disabled() {
    // This test asserts the *disabled* behavior, so it only runs when
    // the environment has not enabled logging (mirroring how
    // tests/observability.rs guards its stderr assertions).
    if std::env::var_os("INSPIRE_LOG").is_some() {
        return;
    }
    let path = build_snapshot("quiet");
    let state = Arc::new(ServeState::load(&path).expect("load snapshot"));
    let term = pick_term(&state);
    let log_path = std::env::temp_dir().join(format!("va-access-quiet-{}.log", std::process::id()));
    let _ = std::fs::remove_file(&log_path);

    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        access_log: Some(log_path.clone()),
        ..ServeConfig::default()
    };
    let server = Server::start(Arc::clone(&state), &cfg).expect("start server");
    let addr = server.local_addr();
    for t in [
        format!("/term?t={term}"),
        format!("/search?q={term}"),
        "/healthz".to_string(),
        "/nope".to_string(),
    ] {
        let _ = http::get(addr, &t, TIMEOUT).unwrap();
    }
    server.shutdown();

    // With INSPIRE_LOG unset the configured file is never even created.
    assert!(
        !log_path.exists(),
        "access log written despite logging being disabled"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn slow_ring_respects_threshold_and_capacity() {
    let path = build_snapshot("ring");
    let state = Arc::new(ServeState::load(&path).expect("load snapshot"));
    let term = pick_term(&state);

    // An absurd threshold: nothing this snapshot serves takes 1000s, so
    // the ring must stay empty no matter how many requests land.
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        slow_log_n: 4,
        slow_threshold_ms: 1_000_000,
        ..ServeConfig::default()
    };
    let server = Server::start(Arc::clone(&state), &cfg).expect("start server");
    let addr = server.local_addr();
    for n in 1..=6 {
        let t = format!("/term?t={term}&top={n}");
        assert_eq!(http::get(addr, &t, TIMEOUT).unwrap().status, 200);
    }
    let slow = http::get(addr, "/debug/slow", TIMEOUT).unwrap();
    let v = parse(&slow.body).expect("slow parse");
    assert_eq!(v.get("retained").and_then(|x| x.as_f64()), Some(0.0));
    assert_eq!(v.get("capacity").and_then(|x| x.as_f64()), Some(4.0));
    assert_eq!(
        v.get("slow").map(|s| s == &Value::Arr(Vec::new())),
        Some(true)
    );
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}
