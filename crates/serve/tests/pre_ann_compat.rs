//! Pre-ANN compatibility: a checked-in snapshot written before the IVF and
//! quantized-signature sections existed must still load and serve
//! every other query kind byte-identical to a freshly built snapshot of
//! the same corpus, while `/similar` fails with a clear rebuild hint.

use corpus::CorpusSpec;
use inspire_core::pipeline::Engine;
use inspire_core::{EngineConfig, EngineSnapshot, Stage};
use inspire_serve::request::split_target;
use inspire_serve::{execute, ServeRequest, ServeState};
use perfmodel::CostModel;
use spmd::Runtime;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn fixture_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/data/pre_ann_final.isnap")
}

/// The exact corpus the checked-in fixture was generated from
/// (`vaengine generate --flavour pubmed --size 96K --seed 29`),
/// including the CLI's write-to-disk/load round trip, which fixes the
/// on-disk source grouping.
fn fixture_corpus() -> corpus::SourceSet {
    let dir = std::env::temp_dir().join(format!("va-pre-ann-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let set = CorpusSpec::pubmed(96 * 1024, 29).generate();
    corpus::load::write_dir(&set, &dir).expect("write fixture corpus");
    let loaded = corpus::load::load_dir(&dir).expect("load fixture corpus");
    let _ = std::fs::remove_dir_all(&dir);
    loaded
}

/// Plain-word terms from the vocabulary, skipping boolean operators.
fn pick_terms(state: &ServeState, n: usize) -> Vec<String> {
    let len = state.terms.len();
    assert!(len > 0, "empty vocabulary");
    let mut out = Vec::new();
    for k in 0..len * 2 {
        let t = state.terms.get((len / 7 + k) % len);
        if t.len() >= 2
            && t.chars().all(|c| c.is_ascii_alphanumeric())
            && !matches!(t, "and" | "or" | "not")
            && !out.iter().any(|o| o == t)
        {
            out.push(t.to_string());
            if out.len() == n {
                return out;
            }
        }
    }
    panic!("not enough usable terms in vocabulary ({len} total)");
}

fn body(state: &ServeState, target: &str) -> String {
    let (path, params) = split_target(target);
    let req = ServeRequest::parse(path, &params).expect("parse");
    execute(state, &req).expect("execute")
}

#[test]
fn pre_ann_snapshot_serves_identically_and_similar_errors() {
    let snap = EngineSnapshot::open(&fixture_path()).expect("pre-ANN fixture opens");
    assert!(!snap.has_ann(), "fixture must predate the ANN sections");
    assert_eq!(snap.meta().stage, Stage::Final);
    let old = ServeState::from_snapshot(snap).expect("pre-ANN fixture loads");
    assert!(!old.has_ann());

    // Similarity queries fail loudly with the rebuild hint, both by doc
    // and by text, before any parameter validation work.
    for target in ["/similar?doc=0", "/similar?text=protein"] {
        let (path, params) = split_target(target);
        let req = ServeRequest::parse(path, &params).expect("parse");
        let err = execute(&old, &req).expect_err("similar must fail on pre-ANN snapshot");
        assert_eq!(err.status, 409, "{target}");
        assert!(
            err.message.contains("no ANN sections; rebuild snapshot"),
            "unexpected message: {}",
            err.message
        );
    }

    // Rebuild the same corpus at the fixture's processor count — the
    // fresh snapshot now carries the ANN sections.
    let out = std::env::temp_dir().join(format!("va-pre-ann-{}.isnap", std::process::id()));
    let _ = std::fs::remove_file(&out);
    let src = fixture_corpus();
    let cfg = EngineConfig {
        n_clusters: 6,
        snapshot_out: Some(out.clone()),
        ..EngineConfig::default()
    };
    let engine = Engine::new(cfg);
    Runtime::new(Arc::new(CostModel::zero())).run(2, |ctx| {
        engine.run(ctx, &src);
    });
    let fresh_snap = EngineSnapshot::open(&out).expect("fresh snapshot opens");
    assert!(
        fresh_snap.has_ann(),
        "fresh Final snapshot gains ANN sections"
    );
    let fresh = ServeState::from_snapshot(fresh_snap).expect("fresh snapshot loads");

    // Same corpus and config ⇒ same collection shape. (corpus_fp hashes
    // the on-disk source *paths*, so it is not comparable across
    // directories; the byte-identical bodies below are the real check.)
    assert_eq!(old.meta.total_docs, fresh.meta.total_docs);
    assert_eq!(old.meta.total_tokens, fresh.meta.total_tokens);
    assert_eq!(old.terms.len(), fresh.terms.len());

    // Every pre-ANN query kind still serves byte-identical bodies.
    let terms = pick_terms(&old, 3);
    let targets = vec![
        format!("/term?t={}", terms[0]),
        format!("/query?q={}+AND+{}", terms[0], terms[1]),
        format!("/query?q={}+OR+{}&top=7", terms[1], terms[2]),
        format!("/search?q={}+{}&top=5", terms[1], terms[2]),
        "/cluster?c=0".to_string(),
        "/rect?x0=-100&y0=-100&x1=100&y1=100&top=20".to_string(),
    ];
    for target in &targets {
        assert_eq!(
            body(&old, target),
            body(&fresh, target),
            "served body diverges for {target}"
        );
    }

    // The fresh snapshot answers the similarity query the fixture
    // could not.
    let b = body(&fresh, "/similar?doc=0&top=3");
    assert!(
        b.starts_with("{\"kind\":\"similar\",\"doc\":0,"),
        "unexpected body: {b}"
    );

    let _ = std::fs::remove_file(&out);
}
