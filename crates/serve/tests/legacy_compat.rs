//! Legacy-format compatibility: a checked-in pre-bump (format v1,
//! fixed-width postings) snapshot must still load through the sniffing
//! reader and serve answers byte-identical to a freshly written
//! block-compressed snapshot of the same corpus and configuration.

use corpus::CorpusSpec;
use inspire_core::pipeline::Engine;
use inspire_core::query::SearchIndex;
use inspire_core::snapshot::checkpoint_path;
use inspire_core::{EngineConfig, EngineSnapshot, Stage, TermId};
use inspire_serve::request::split_target;
use inspire_serve::{execute, ServeRequest, ServeState};
use perfmodel::CostModel;
use spmd::Runtime;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn fixture_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/data/legacy_v1.isnap")
}

/// The exact corpus the checked-in fixture was generated from.
fn fixture_corpus() -> corpus::SourceSet {
    CorpusSpec {
        source_bytes: 8 * 1024,
        ..CorpusSpec::pubmed(16 * 1024, 29)
    }
    .generate()
}

/// Plain-word terms from the vocabulary, skipping boolean operators.
fn pick_terms(state: &ServeState, n: usize) -> Vec<String> {
    let len = state.terms.len();
    assert!(len > 0, "empty vocabulary");
    let mut out = Vec::new();
    for k in 0..len * 2 {
        let t = state.terms.get((len / 7 + k) % len);
        if t.len() >= 2
            && t.chars().all(|c| c.is_ascii_alphanumeric())
            && !matches!(t, "and" | "or" | "not")
            && !out.iter().any(|o| o == t)
        {
            out.push(t.to_string());
            if out.len() == n {
                return out;
            }
        }
    }
    panic!("not enough usable terms in vocabulary ({len} total)");
}

fn body(state: &ServeState, target: &str) -> String {
    let (path, params) = split_target(target);
    let req = ServeRequest::parse(path, &params).expect("parse");
    execute(state, &req).expect("execute")
}

#[test]
fn legacy_v1_snapshot_serves_identically_to_fresh_v2() {
    let legacy_snap = EngineSnapshot::open(&fixture_path()).expect("legacy fixture opens");
    assert!(
        !legacy_snap.has_compressed_index(),
        "fixture must carry the fixed-width layout"
    );
    assert_eq!(legacy_snap.meta().stage, Stage::Index);
    let legacy = ServeState::from_snapshot(legacy_snap).expect("legacy fixture loads");
    assert!(legacy.has_index());

    // Re-run the engine on the same corpus at the fixture's processor
    // count and capture a fresh — now block-compressed — checkpoint.
    let dir = std::env::temp_dir().join(format!("va-legacy-compat-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let src = fixture_corpus();
    let cfg = EngineConfig {
        checkpoint_dir: Some(dir.clone()),
        ..EngineConfig::for_testing()
    };
    let engine = Engine::new(cfg);
    Runtime::new(Arc::new(CostModel::zero())).run(1, |ctx| {
        engine.run_until(ctx, &src, Stage::Index);
    });
    let fresh_path = checkpoint_path(&dir, Stage::Index);
    let fresh_snap = EngineSnapshot::open(&fresh_path).expect("fresh checkpoint opens");
    assert!(fresh_snap.has_compressed_index());
    let fresh = ServeState::from_snapshot(fresh_snap).expect("fresh snapshot loads");

    // Same corpus and config ⇒ same collection; a mismatch here means the
    // corpus generator or scan changed and the comparison below would be
    // meaningless.
    assert_eq!(legacy.meta.corpus_fp, fresh.meta.corpus_fp);
    assert_eq!(legacy.meta.total_docs, fresh.meta.total_docs);
    assert_eq!(legacy.terms.len(), fresh.terms.len());

    // Raw reads agree, order included: the legacy reader's post-sort and
    // the compressed writer's pre-sort meet at the same sequence.
    for t in (0..legacy.terms.len()).step_by(97) {
        let t = t as TermId;
        assert_eq!(legacy.postings_of(t), fresh.postings_of(t), "term {t}");
        assert_eq!(legacy.df(t), fresh.df(t), "df of term {t}");
    }

    // Served bodies are byte-identical through both layouts.
    let terms = pick_terms(&legacy, 5);
    let targets = vec![
        format!("/term?t={}", terms[0]),
        format!("/term?t={}&top=3", terms[1]),
        format!("/query?q={}+AND+{}", terms[0], terms[2]),
        format!("/query?q={}+OR+{}&top=7", terms[3], terms[4]),
        format!("/query?q={}+AND+NOT+{}", terms[2], terms[0]),
        format!("/search?q={}+{}&top=5", terms[2], terms[1]),
    ];
    for target in &targets {
        assert_eq!(
            body(&legacy, target),
            body(&fresh, target),
            "served body diverges for {target}"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
