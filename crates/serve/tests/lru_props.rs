//! Property tests for the serving result cache: cached answers always
//! equal fresh recomputation, counters account for every operation, and
//! the slab-based implementation behaves exactly like a naive
//! front-is-MRU vector model under arbitrary operation sequences.

use inspire_serve::LruCache;
use proptest::prelude::*;
use std::sync::Arc;

/// A deterministic "query executor": what the cache would memoize.
fn compute(key: u8) -> String {
    format!(
        "body-{}-{}",
        key,
        (key as u64).wrapping_mul(0x9e37_79b9) % 997
    )
}

/// The obvious reference implementation: a vector ordered MRU-first.
struct NaiveLru {
    entries: Vec<(u8, String)>,
    capacity: usize,
}

impl NaiveLru {
    fn get(&mut self, k: u8) -> Option<String> {
        let pos = self.entries.iter().position(|(ek, _)| *ek == k)?;
        let e = self.entries.remove(pos);
        let v = e.1.clone();
        self.entries.insert(0, e);
        Some(v)
    }

    fn insert(&mut self, k: u8, v: String) {
        if let Some(pos) = self.entries.iter().position(|(ek, _)| *ek == k) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.capacity {
            self.entries.pop();
        }
        self.entries.insert(0, (k, v));
    }

    fn keys(&self) -> Vec<String> {
        self.entries.iter().map(|(k, _)| format!("k{k}")).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The serving pattern: look up, recompute on miss. Every hit must
    /// return exactly what recomputation would have produced.
    #[test]
    fn cached_answers_equal_uncached_recomputation(
        keys in prop::collection::vec(0u8..24, 1..256),
        cap in 1usize..10,
    ) {
        let mut cache = LruCache::new(cap);
        for &k in &keys {
            let key = format!("k{k}");
            let fresh = compute(k);
            match cache.get(&key) {
                Some(cached) => prop_assert_eq!(cached.as_ref(), fresh.as_str()),
                None => cache.insert(&key, Arc::from(fresh.as_str())),
            }
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, keys.len() as u64);
        // Every miss inserts, and every entry is either resident or was
        // evicted to make room.
        prop_assert_eq!(s.insertions, s.misses);
        prop_assert_eq!(s.insertions, s.evictions + cache.len() as u64);
        prop_assert!(cache.len() <= cap);
    }

    /// Arbitrary interleavings of gets and inserts match the naive
    /// MRU-vector model: same hit/miss outcomes, same values, same
    /// recency order, same evictions.
    #[test]
    fn behaves_like_the_naive_model(
        ops in prop::collection::vec((0u8..12, any::<bool>()), 1..200),
        cap in 1usize..6,
    ) {
        let mut cache = LruCache::new(cap);
        let mut model = NaiveLru { entries: Vec::new(), capacity: cap };
        for (step, &(k, is_insert)) in ops.iter().enumerate() {
            let key = format!("k{k}");
            if is_insert {
                // Distinct value per step so refreshes are observable.
                let v = format!("v{step}");
                cache.insert(&key, Arc::from(v.as_str()));
                model.insert(k, v);
            } else {
                let got = cache.get(&key).map(|a| a.to_string());
                prop_assert_eq!(got, model.get(k), "step {}", step);
            }
            let keys: Vec<String> =
                cache.keys_mru().iter().map(|s| s.to_string()).collect();
            prop_assert_eq!(keys, model.keys(), "step {}", step);
            prop_assert!(cache.len() <= cap);
        }
    }
}
