//! Merge-on-read serving over base snapshot + ingest segments.
//!
//! [`LiveIndex`] is the generation-swappable overlay a [`ServeState`]
//! carries when it serves an ingest directory instead of a single
//! snapshot: the merged (sorted-union) vocabulary, a per-component term
//! map, summed df stats, and the union of tombstones. Components cover
//! disjoint, ascending document ranges — base `[0, base_docs)`, then
//! each segment `[doc_base, doc_base + doc_count)` in manifest order —
//! so a merged posting list is the plain concatenation of component
//! lists, already doc-sorted. That makes every merged answer
//! bit-identical to a from-scratch rebuild of the same logical corpus:
//! same postings in the same order, same df sums, same total_docs, and
//! therefore the same scores and bytes.
//!
//! Lower-bounded reads ([`LiveIndex::postings_from`], the boolean AND
//! seek path) skip whole components whose doc range lies below the
//! bound and use the block skip-pointers inside the one component the
//! bound lands in.
//!
//! Deletes are tombstones: postings of tombstoned documents are
//! filtered out of every merged list, while df/tf stats and total_docs
//! intentionally keep counting them (LSM semantics — stats converge
//! when a future full rebuild folds the base). Compaction preserves
//! exactly these semantics, so a generation flip never changes bytes.

use crate::state::ServeState;
use inspire_core::index::Posting;
use inspire_core::query::SearchIndex;
use inspire_core::TermId;
use inspire_ingest::{Manifest, Segment};
use intern::TermTable;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// "This component does not contain the merged term."
const ABSENT: u32 = u32::MAX;

/// The merge-on-read overlay. Built by [`load_live_state`]; owned by a
/// [`ServeState`] whose `terms` is the merged vocabulary.
pub struct LiveIndex {
    segments: Vec<Segment>,
    /// Per merged term id: base-local term id, or [`ABSENT`].
    base_map: Vec<u32>,
    /// Per segment, per merged term id: segment-local id or [`ABSENT`].
    seg_maps: Vec<Vec<u32>>,
    /// Merged document frequency: base + segment deltas.
    df: Vec<u32>,
    /// Documents in the base component.
    base_docs: u32,
    /// Documents across base + segments (tombstones still counted).
    total_docs: u32,
    /// Sorted union of segment tombstones (global doc ids).
    tombstones: Vec<u32>,
}

fn bad(dir: &Path, msg: String) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{}: {msg}", dir.display()),
    )
}

/// Build a serving state over an ingest directory: base snapshot plus
/// every manifest-listed segment, merged at read time. The base is
/// required — merge-on-read unions postings with it — and must carry an
/// inverted index.
pub fn load_live_state(dir: &Path) -> io::Result<ServeState> {
    let manifest = Manifest::load(dir)?
        .ok_or_else(|| bad(dir, "not an ingest directory (no manifest)".into()))?;
    let base_path = manifest
        .base
        .clone()
        .ok_or_else(|| bad(dir, "live serving requires a base snapshot".into()))?;
    let mut state = ServeState::load(&base_path)?;
    if !state.has_index() {
        return Err(bad(
            dir,
            format!(
                "base snapshot {} predates the Index stage; cannot merge postings",
                base_path.display()
            ),
        ));
    }
    if state.meta.total_docs != manifest.base_docs {
        return Err(bad(
            dir,
            format!(
                "manifest says the base has {} documents, snapshot has {}",
                manifest.base_docs, state.meta.total_docs
            ),
        ));
    }
    let segments: Vec<Segment> = manifest
        .segments
        .iter()
        .map(|s| Segment::open(&dir.join(&s.file)))
        .collect::<io::Result<_>>()?;
    for (r, seg) in manifest.segments.iter().zip(&segments) {
        if seg.doc_base() != r.doc_base || seg.doc_count() != r.doc_count {
            return Err(bad(
                dir,
                format!(
                    "segment {} covers docs [{}, {}) but the manifest says [{}, {})",
                    r.file,
                    seg.doc_base(),
                    seg.doc_end(),
                    r.doc_base,
                    r.doc_base + r.doc_count
                ),
            ));
        }
    }

    // Sorted union of base + segment vocabularies. Component index 0 is
    // the base; 1 + si is segment si.
    let base_terms = Arc::clone(&state.terms);
    let mut keyed: Vec<(&str, usize, u32)> = Vec::new();
    for (i, term) in base_terms.iter().enumerate() {
        keyed.push((term, 0, i as u32));
    }
    for (si, seg) in segments.iter().enumerate() {
        for (local, term) in seg.terms().iter().enumerate() {
            keyed.push((term, 1 + si, local as u32));
        }
    }
    keyed.sort_unstable_by(|a, b| a.0.as_bytes().cmp(b.0.as_bytes()).then(a.1.cmp(&b.1)));

    let mut vocab: Vec<&str> = Vec::new();
    let mut base_map: Vec<u32> = Vec::new();
    let mut seg_maps: Vec<Vec<u32>> = vec![Vec::new(); segments.len()];
    let mut df: Vec<u32> = Vec::new();
    let mut at = 0usize;
    while at < keyed.len() {
        let term = keyed[at].0;
        vocab.push(term);
        base_map.push(ABSENT);
        for m in seg_maps.iter_mut() {
            m.push(ABSENT);
        }
        let mut d = 0u32;
        while at < keyed.len() && keyed[at].0 == term {
            let (_, comp, local) = keyed[at];
            if comp == 0 {
                *base_map.last_mut().unwrap() = local;
                d += state.base_df(local);
            } else {
                seg_maps[comp - 1][vocab.len() - 1] = local;
                d += segments[comp - 1].df(local);
            }
            at += 1;
        }
        df.push(d);
    }
    let merged_terms = Arc::new(TermTable::from_sorted(vocab.iter().copied()));

    // Segments carry no signature sections; reconstruct their documents'
    // signatures from postings so `/similar` can brute-force them.
    state.attach_segment_signatures(&segments);

    let mut tombstones: Vec<u32> = segments
        .iter()
        .flat_map(|s| s.tombstones().iter().copied())
        .collect();
    tombstones.sort_unstable();
    tombstones.dedup();
    let total_docs = manifest.base_docs + segments.iter().map(|s| s.doc_count()).sum::<u32>();

    state.terms = merged_terms;
    state.live = Some(LiveIndex {
        segments,
        base_map,
        seg_maps,
        df,
        base_docs: manifest.base_docs,
        total_docs,
        tombstones,
    });
    state.generation = manifest.generation;
    state.last_seal_unix = manifest.last_seal_unix;
    state.ingest_dir = Some(dir.to_path_buf());
    Ok(state)
}

impl LiveIndex {
    pub fn segments_open(&self) -> usize {
        self.segments.len()
    }

    pub fn total_docs(&self) -> u32 {
        self.total_docs
    }

    pub fn df(&self, term: TermId) -> u32 {
        self.df[term as usize]
    }

    /// Sorted union of segment tombstones (global doc ids).
    pub(crate) fn tombstones(&self) -> &[u32] {
        &self.tombstones
    }

    /// Is `doc` tombstoned?
    pub(crate) fn is_deleted(&self, doc: u32) -> bool {
        self.tombstones.binary_search(&doc).is_ok()
    }

    /// Drop tombstoned postings from `out[from..]` (which is sorted by
    /// doc; the filter is order-preserving).
    fn filter_tombstones(&self, out: &mut Vec<Posting>, from: usize) {
        if self.tombstones.is_empty() {
            return;
        }
        let mut w = from;
        for r in from..out.len() {
            if self.tombstones.binary_search(&out[r].doc).is_err() {
                out[w] = out[r];
                w += 1;
            }
        }
        out.truncate(w);
    }

    /// Merged full posting list: base component, then each segment in
    /// doc order. Component ranges are disjoint and ascending, so the
    /// concatenation is the doc-sorted list a rebuild would store.
    pub fn postings_into(&self, state: &ServeState, term: TermId, out: &mut Vec<Posting>) {
        let from = out.len();
        let b = self.base_map[term as usize];
        if b != ABSENT {
            state.base_postings_into(b, out);
        }
        for (si, seg) in self.segments.iter().enumerate() {
            let local = self.seg_maps[si][term as usize];
            if local != ABSENT {
                seg.postings_into(local, out);
            }
        }
        self.filter_tombstones(out, from);
    }

    /// Merged lower-bounded read: components entirely below `min_doc`
    /// are skipped without touching their bytes; the one the bound
    /// lands in seeks through its skip pointers.
    pub fn postings_from(
        &self,
        state: &ServeState,
        term: TermId,
        min_doc: u32,
        out: &mut Vec<Posting>,
    ) {
        let from = out.len();
        let b = self.base_map[term as usize];
        if b != ABSENT && min_doc < self.base_docs {
            state.base_postings_from(b, min_doc, out);
        }
        for (si, seg) in self.segments.iter().enumerate() {
            let local = self.seg_maps[si][term as usize];
            if local == ABSENT || min_doc >= seg.doc_end() {
                continue;
            }
            if min_doc <= seg.doc_base() {
                seg.postings_into(local, out);
            } else {
                seg.postings_from(local, min_doc, out);
            }
        }
        self.filter_tombstones(out, from);
    }
}

/// Merged-view invariant check used by tests: every posting stream a
/// [`SearchIndex`] hands out must be strictly doc/field-sorted.
pub fn assert_sorted(state: &ServeState, term: TermId) {
    let posts = state.postings_of(term);
    assert!(
        posts.windows(2).all(|w| w[0] < w[1]),
        "merged postings out of order for term {term}"
    );
}
