//! LRU query-result cache with hit/miss/eviction accounting.
//!
//! Classic intrusive doubly-linked LRU over a slab: `map` resolves a
//! normalized query key to a slab slot, and the slab links slots from
//! most- to least-recently used. Every operation is O(1) (amortized over
//! the hash map); capacity is a fixed entry count chosen at server start.
//! The cache stores fully rendered response bodies behind `Arc<str>` so
//! a hit clones a pointer, not the payload.

use std::collections::HashMap;
use std::sync::Arc;

/// Monotonic counters the `/metrics` endpoint reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from cache (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Node {
    key: String,
    value: Arc<str>,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// A fixed-capacity least-recently-used map from normalized query keys
/// to rendered response bodies.
pub struct LruCache {
    map: HashMap<String, usize>,
    slab: Vec<Node>,
    head: usize,
    tail: usize,
    capacity: usize,
    stats: CacheStats,
    /// Bytes of all resident values (rendered response bodies).
    resident_bytes: usize,
}

impl LruCache {
    /// A cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        LruCache {
            map: HashMap::with_capacity(capacity + 1),
            slab: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
            stats: CacheStats::default(),
            resident_bytes: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes held by all cached response bodies right now (tracked on
    /// insert/replace/evict; a `/metrics` gauge).
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Look `key` up, counting a hit (and refreshing recency) or a miss.
    pub fn get(&mut self, key: &str) -> Option<Arc<str>> {
        match self.map.get(key).copied() {
            Some(at) => {
                self.stats.hits += 1;
                self.unlink(at);
                self.push_front(at);
                Some(Arc::clone(&self.slab[at].value))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) `key`, evicting the least-recently-used entry
    /// when the cache is full.
    pub fn insert(&mut self, key: &str, value: Arc<str>) {
        self.stats.insertions += 1;
        if let Some(&at) = self.map.get(key) {
            self.resident_bytes = self.resident_bytes - self.slab[at].value.len() + value.len();
            self.slab[at].value = value;
            self.unlink(at);
            self.push_front(at);
            return;
        }
        self.resident_bytes += value.len();
        let at = if self.map.len() >= self.capacity {
            // Reuse the LRU slot: drop its key, keep its slab cell.
            let victim = self.tail;
            self.unlink(victim);
            let old_key = std::mem::replace(&mut self.slab[victim].key, key.to_string());
            self.map.remove(&old_key);
            self.resident_bytes -= self.slab[victim].value.len();
            self.slab[victim].value = value;
            self.stats.evictions += 1;
            victim
        } else {
            self.slab.push(Node {
                key: key.to_string(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.slab.len() - 1
        };
        self.map.insert(key.to_string(), at);
        self.push_front(at);
    }

    /// Keys from most- to least-recently used (for tests).
    pub fn keys_mru(&self) -> Vec<&str> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut at = self.head;
        while at != NIL {
            out.push(self.slab[at].key.as_str());
            at = self.slab[at].next;
        }
        out
    }

    fn unlink(&mut self, at: usize) {
        let (prev, next) = (self.slab[at].prev, self.slab[at].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else if self.head == at {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else if self.tail == at {
            self.tail = prev;
        }
        self.slab[at].prev = NIL;
        self.slab[at].next = NIL;
    }

    fn push_front(&mut self, at: usize) {
        self.slab[at].prev = NIL;
        self.slab[at].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = at;
        }
        self.head = at;
        if self.tail == NIL {
            self.tail = at;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn eviction_follows_lru_order() {
        let mut c = LruCache::new(3);
        c.insert("a", v("1"));
        c.insert("b", v("2"));
        c.insert("c", v("3"));
        assert_eq!(c.keys_mru(), ["c", "b", "a"]);
        // Touch `a`, making `b` the LRU entry.
        assert_eq!(c.get("a").as_deref(), Some("1"));
        c.insert("d", v("4"));
        assert_eq!(c.len(), 3);
        assert_eq!(c.keys_mru(), ["d", "a", "c"]);
        assert!(c.get("b").is_none());
        // Next eviction takes `c`.
        c.insert("e", v("5"));
        assert_eq!(c.keys_mru(), ["e", "d", "a"]);
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn counters_account_every_operation() {
        let mut c = LruCache::new(2);
        assert!(c.get("x").is_none());
        c.insert("x", v("1"));
        assert_eq!(c.get("x").as_deref(), Some("1"));
        c.insert("y", v("2"));
        c.insert("z", v("3")); // evicts x
        assert!(c.get("x").is_none());
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.insertions, 3);
        assert_eq!(s.evictions, 1);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let mut c = LruCache::new(2);
        c.insert("a", v("1"));
        c.insert("b", v("2"));
        c.insert("a", v("1'"));
        assert_eq!(c.keys_mru(), ["a", "b"]);
        assert_eq!(c.get("a").as_deref(), Some("1'"));
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn resident_bytes_tracks_insert_replace_evict() {
        let mut c = LruCache::new(2);
        assert_eq!(c.resident_bytes(), 0);
        c.insert("a", v("12345"));
        assert_eq!(c.resident_bytes(), 5);
        // Replacement swaps the old value's bytes for the new value's.
        c.insert("a", v("123"));
        assert_eq!(c.resident_bytes(), 3);
        c.insert("b", v("1234"));
        assert_eq!(c.resident_bytes(), 7);
        // Eviction of `a` releases its 3 bytes while admitting 6.
        c.insert("c", v("123456"));
        assert_eq!(c.resident_bytes(), 10);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_one_works() {
        let mut c = LruCache::new(1);
        c.insert("a", v("1"));
        c.insert("b", v("2"));
        assert_eq!(c.len(), 1);
        assert!(c.get("a").is_none());
        assert_eq!(c.get("b").as_deref(), Some("2"));
        assert_eq!(c.keys_mru(), ["b"]);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut c = LruCache::new(0);
        assert_eq!(c.capacity(), 1);
        c.insert("a", v("1"));
        assert_eq!(c.get("a").as_deref(), Some("1"));
    }
}
