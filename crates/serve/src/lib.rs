//! Concurrent snapshot-serving tier.
//!
//! `vaengine serve` turns one immutable engine snapshot into a
//! long-lived query service: a zero-dependency HTTP/1.1 server over
//! `std::net::TcpListener` answering the engine's six query kinds
//! (`/term`, `/query`, `/search`, `/cluster`, `/rect`, `/similar`) as
//! deterministic JSON, plus `/healthz`, `/metrics` (JSON, or Prometheus
//! text via
//! `?format=prom`), and `/debug/slow` (the worst-N request timelines,
//! JSON or Chrome-trace via `?format=chrome`).
//!
//! The crate splits along the obvious seams:
//!
//! - [`state`] — [`state::ServeState`]: a `Send + Sync` view over
//!   the snapshot's scan/index/output sections, implementing the core
//!   [`inspire_core::query::SearchIndex`] trait so served answers run
//!   the exact algorithms the CLI runs.
//! - [`request`] — typed routes, normalized cache keys, and the shared
//!   [`request::execute`] renderer both front ends use, which is what
//!   makes served bodies byte-identical to `vaengine query --json`.
//! - [`lru`] — the fixed-capacity result cache with hit/miss/eviction
//!   counters surfaced at `/metrics`.
//! - [`http`] — hand-rolled request parsing (total, never panics, hard
//!   head limits), response writing, and a tiny blocking client.
//! - [`server`] — accept thread, bounded queue with 429 backpressure,
//!   an [`spmd::IntraPool`] worker pool, graceful drain on shutdown,
//!   and hot state swaps ([`server::Server::swap_state`]) for ingest
//!   generation flips.
//! - [`live`] — merge-on-read over base snapshot + ingest segments:
//!   [`live::load_live_state`] builds a [`state::ServeState`] whose
//!   answers are bit-identical to a full rebuild of the same logical
//!   corpus.

pub mod http;
pub mod live;
pub mod lru;
pub mod request;
pub mod server;
pub mod state;

pub use live::load_live_state;
pub use lru::{CacheStats, LruCache};
pub use request::{execute, execute_timed, ExecTiming, RequestError, ServeRequest};
pub use server::{ServeConfig, ServeSummary, Server};
pub use state::ServeState;
