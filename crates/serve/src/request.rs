//! Query requests: route parsing, normalized cache keys, and execution.
//!
//! A [`ServeRequest`] is the typed form of one query URL. The same
//! request type backs both front ends — the HTTP server routes
//! `GET /search?q=…` here, and `vaengine query --json` builds requests
//! from CLI flags — so both produce their response bodies from
//! [`execute`], and a served body is byte-identical to the single-shot
//! CLI body for the same query by construction.
//!
//! Bodies are deterministic JSON, one line, newline-terminated. Floats
//! render through [`inspire_trace::json::num`] (shortest round-trip
//! form), and every body is built from the query result alone — no
//! timestamps, no server identity — so identical queries against the
//! same snapshot always yield identical bytes (what the result cache
//! and the load generator's oracle check both rely on).

use crate::state::ServeState;
use inspire_core::interact::{select_cluster, select_rect};
use inspire_core::query::{self, Query, SearchIndex};
use inspire_trace::json::{escape, num};

/// One typed query, any of the six kinds the engine serves.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeRequest {
    /// Raw postings of one term: `/term?t=<term>`.
    Term { term: String, top: usize },
    /// Boolean retrieval: `/query?q=<expr>`.
    Boolean { expr: Query, top: usize },
    /// TF-IDF ranked retrieval: `/search?q=<text>`.
    Search { text: String, top: usize },
    /// Documents of one cluster: `/cluster?c=<id>`.
    Cluster { cluster: u32, top: usize },
    /// Documents inside a coordinate rectangle: `/rect?x0=&y0=&x1=&y1=`.
    Rect {
        min: (f64, f64),
        max: (f64, f64),
        top: usize,
    },
    /// IVF similarity search: `/similar?doc=<id>` or
    /// `/similar?text=<free text>`, optional `nprobe=`.
    Similar {
        doc: Option<u32>,
        text: Option<String>,
        top: usize,
        nprobe: usize,
    },
}

/// A client error: HTTP status plus a message for the JSON error body.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestError {
    pub status: u16,
    pub message: String,
}

impl RequestError {
    pub fn bad(message: impl Into<String>) -> Self {
        RequestError {
            status: 400,
            message: message.into(),
        }
    }
}

/// Default and maximum `top` (result rows per response).
pub const DEFAULT_TOP: usize = 10;
pub const MAX_TOP: usize = 10_000;

/// Default `nprobe` for `/similar` (clamped to the centroid count at
/// search time, so small snapshots effectively scan exhaustively).
pub const DEFAULT_NPROBE: usize = 8;

/// Decode `%XX` escapes and `+`-as-space in a URL query component.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() => {
                let hex = |b: u8| -> Option<u8> {
                    match b {
                        b'0'..=b'9' => Some(b - b'0'),
                        b'a'..=b'f' => Some(b - b'a' + 10),
                        b'A'..=b'F' => Some(b - b'A' + 10),
                        _ => None,
                    }
                };
                match (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                    (Some(h), Some(l)) => {
                        out.push(h << 4 | l);
                        i += 2;
                    }
                    _ => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Split a request target into `(path, decoded query params)`.
pub fn split_target(target: &str) -> (&str, Vec<(String, String)>) {
    let (path, qs) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let params = qs
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();
    (path, params)
}

fn param<'a>(params: &'a [(String, String)], key: &str) -> Option<&'a str> {
    params
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

fn parse_top(params: &[(String, String)]) -> Result<usize, RequestError> {
    match param(params, "top") {
        None => Ok(DEFAULT_TOP),
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|n| (1..=MAX_TOP).contains(n))
            .ok_or_else(|| RequestError::bad(format!("bad top={v:?} (1..={MAX_TOP})"))),
    }
}

fn parse_f64(params: &[(String, String)], key: &str) -> Result<f64, RequestError> {
    let v = param(params, key).ok_or_else(|| RequestError::bad(format!("missing {key}=")))?;
    v.parse::<f64>()
        .ok()
        .filter(|x| x.is_finite())
        .ok_or_else(|| RequestError::bad(format!("bad {key}={v:?}")))
}

impl ServeRequest {
    /// Parse a query route (`path` + decoded params) into a request.
    /// Returns `Err(404)` for unknown paths, `Err(400)` for bad params.
    pub fn parse(path: &str, params: &[(String, String)]) -> Result<ServeRequest, RequestError> {
        let top = parse_top(params)?;
        match path {
            "/term" => {
                let term = param(params, "t").ok_or_else(|| RequestError::bad("missing t="))?;
                if term.is_empty() {
                    return Err(RequestError::bad("empty t="));
                }
                Ok(ServeRequest::Term {
                    term: term.to_ascii_lowercase(),
                    top,
                })
            }
            "/query" => {
                let expr = param(params, "q").ok_or_else(|| RequestError::bad("missing q="))?;
                let parsed = Query::parse(expr)
                    .map_err(|e| RequestError::bad(format!("bad query {expr:?}: {e}")))?;
                Ok(ServeRequest::Boolean { expr: parsed, top })
            }
            "/search" => {
                let text = param(params, "q").ok_or_else(|| RequestError::bad("missing q="))?;
                if text.is_empty() {
                    return Err(RequestError::bad("empty q="));
                }
                Ok(ServeRequest::Search {
                    text: text.to_string(),
                    top,
                })
            }
            "/cluster" => {
                let c = param(params, "c").ok_or_else(|| RequestError::bad("missing c="))?;
                let cluster = c
                    .parse::<u32>()
                    .map_err(|_| RequestError::bad(format!("bad c={c:?}")))?;
                Ok(ServeRequest::Cluster { cluster, top })
            }
            "/rect" => {
                let x0 = parse_f64(params, "x0")?;
                let y0 = parse_f64(params, "y0")?;
                let x1 = parse_f64(params, "x1")?;
                let y1 = parse_f64(params, "y1")?;
                Ok(ServeRequest::Rect {
                    min: (x0.min(x1), y0.min(y1)),
                    max: (x0.max(x1), y0.max(y1)),
                    top,
                })
            }
            "/similar" => {
                let nprobe = match param(params, "nprobe") {
                    None => DEFAULT_NPROBE,
                    Some(v) => v
                        .parse::<usize>()
                        .ok()
                        .filter(|n| *n >= 1)
                        .ok_or_else(|| RequestError::bad(format!("bad nprobe={v:?} (>= 1)")))?,
                };
                match (param(params, "doc"), param(params, "text")) {
                    (Some(_), Some(_)) => Err(RequestError::bad("give doc= or text=, not both")),
                    (None, None) => Err(RequestError::bad("missing doc= or text=")),
                    (Some(d), None) => {
                        let doc = d
                            .parse::<u32>()
                            .map_err(|_| RequestError::bad(format!("bad doc={d:?}")))?;
                        Ok(ServeRequest::Similar {
                            doc: Some(doc),
                            text: None,
                            top,
                            nprobe,
                        })
                    }
                    (None, Some(t)) => {
                        if t.is_empty() {
                            return Err(RequestError::bad("empty text="));
                        }
                        Ok(ServeRequest::Similar {
                            doc: None,
                            text: Some(t.to_string()),
                            top,
                            nprobe,
                        })
                    }
                }
            }
            other => Err(RequestError {
                status: 404,
                message: format!("unknown route {other:?}"),
            }),
        }
    }

    /// Metric name of this query kind (`serve_<kind>_seconds`
    /// histograms, `client_<kind>_seconds` on the load-generator side).
    pub fn kind(&self) -> &'static str {
        match self {
            ServeRequest::Term { .. } => "term",
            ServeRequest::Boolean { .. } => "query",
            ServeRequest::Search { .. } => "search",
            ServeRequest::Cluster { .. } => "cluster",
            ServeRequest::Rect { .. } => "rect",
            ServeRequest::Similar { .. } => "similar",
        }
    }

    /// Normalized cache key: two requests that must produce the same
    /// body map to the same key (boolean expressions are canonicalized
    /// through [`Query::normalized`], search text through the indexing
    /// tokenizer).
    pub fn cache_key(&self) -> String {
        match self {
            ServeRequest::Term { term, top } => format!("term\u{1}{term}\u{1}{top}"),
            ServeRequest::Boolean { expr, top } => {
                format!("query\u{1}{}\u{1}{top}", expr.normalized())
            }
            ServeRequest::Search { text, top } => {
                let tokenizer = inspire_core::tokenize::Tokenizer::default();
                let mut terms = Vec::new();
                tokenizer.tokenize_into(text, |t| terms.push(t.to_string()));
                format!("search\u{1}{}\u{1}{top}", terms.join(" "))
            }
            ServeRequest::Cluster { cluster, top } => format!("cluster\u{1}{cluster}\u{1}{top}"),
            ServeRequest::Rect { min, max, top } => format!(
                "rect\u{1}{},{},{},{}\u{1}{top}",
                num(min.0),
                num(min.1),
                num(max.0),
                num(max.1)
            ),
            ServeRequest::Similar {
                doc,
                text,
                top,
                nprobe,
            } => {
                // Doc queries key on the id; text queries normalize
                // through the indexing tokenizer like `/search`.
                let target = match (doc, text) {
                    (Some(d), _) => format!("d{d}"),
                    (None, Some(t)) => {
                        let tokenizer = inspire_core::tokenize::Tokenizer::default();
                        let mut terms = Vec::new();
                        tokenizer.tokenize_into(t, |t| terms.push(t.to_string()));
                        format!("t{}", terms.join(" "))
                    }
                    (None, None) => String::new(),
                };
                format!("similar\u{1}{target}\u{1}{top}\u{1}{nprobe}")
            }
        }
    }
}

/// Execute `req` against `state`, producing the JSON response body
/// (newline-terminated). Errors are client errors: missing index
/// sections for the requested kind, unknown cluster ids.
pub fn execute(state: &ServeState, req: &ServeRequest) -> Result<String, RequestError> {
    execute_timed(state, req).map(|(body, _)| body)
}

/// Wall-time split of one [`execute_timed`] call: query evaluation
/// (postings decode included) versus response-body rendering.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecTiming {
    pub eval_ns: u64,
    pub serialize_ns: u64,
}

fn ns(d: std::time::Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

/// Timing split for an arm whose evaluation ran `t0..t1` and whose
/// serialization ran from `t1` until this call.
fn split(t0: std::time::Instant, t1: std::time::Instant) -> ExecTiming {
    ExecTiming {
        eval_ns: ns(t1 - t0),
        serialize_ns: ns(t1.elapsed()),
    }
}

/// [`execute`] plus an eval/serialize wall-time split for request
/// tracing. `execute` delegates here, so the body bytes are identical
/// with and without tracing by construction.
pub fn execute_timed(
    state: &ServeState,
    req: &ServeRequest,
) -> Result<(String, ExecTiming), RequestError> {
    use std::time::Instant;
    match req {
        ServeRequest::Term { term, top } => {
            require_index(state)?;
            let t0 = Instant::now();
            let posts = query::lookup_in(state, term);
            let mut docs: Vec<u32> = posts.iter().map(|p| p.doc).collect();
            docs.dedup();
            let t1 = Instant::now();
            let mut body = format!(
                "{{\"kind\":\"term\",\"term\":\"{}\",\"postings\":{},\"documents\":{},\"hits\":[",
                escape(term),
                posts.len(),
                docs.len()
            );
            for (i, p) in posts.iter().take(*top).enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&format!(
                    "{{\"doc\":{},\"field\":{},\"freq\":{}}}",
                    p.doc, p.field, p.freq
                ));
            }
            body.push_str("]}\n");
            Ok((body, split(t0, t1)))
        }
        ServeRequest::Boolean { expr, top } => {
            require_index(state)?;
            let t0 = Instant::now();
            let docs = query::evaluate_in(state, expr);
            let t1 = Instant::now();
            let mut body = format!(
                "{{\"kind\":\"query\",\"query\":\"{}\",\"matches\":{},\"docs\":[",
                escape(&expr.normalized()),
                docs.len()
            );
            for (i, d) in docs.iter().take(*top).enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&d.to_string());
            }
            body.push_str("]}\n");
            Ok((body, split(t0, t1)))
        }
        ServeRequest::Search { text, top } => {
            require_index(state)?;
            let t0 = Instant::now();
            let hits = query::search_in(state, text, *top);
            let t1 = Instant::now();
            let mut body = format!(
                "{{\"kind\":\"search\",\"text\":\"{}\",\"hits\":[",
                escape(text)
            );
            for (i, h) in hits.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&format!("{{\"doc\":{},\"score\":{}}}", h.doc, num(h.score)));
            }
            body.push_str("]}\n");
            Ok((body, split(t0, t1)))
        }
        ServeRequest::Cluster { cluster, top } => {
            let (coords, assignments) = require_layout(state)?;
            if *cluster as usize >= state.cluster_sizes.len() {
                return Err(RequestError::bad(format!(
                    "unknown cluster {cluster} (0..{})",
                    state.cluster_sizes.len()
                )));
            }
            let t0 = Instant::now();
            let docs = select_cluster(assignments, *cluster);
            let t1 = Instant::now();
            let label = state
                .cluster_labels
                .get(*cluster as usize)
                .map(|l| l.join(", "))
                .unwrap_or_default();
            let mut body = format!(
                "{{\"kind\":\"cluster\",\"cluster\":{},\"label\":\"{}\",\"size\":{},\"docs\":[",
                cluster,
                escape(&label),
                docs.len()
            );
            for (i, d) in docs.iter().take(*top).enumerate() {
                if i > 0 {
                    body.push(',');
                }
                let (x, y) = coords[*d as usize];
                body.push_str(&format!(
                    "{{\"doc\":{},\"x\":{},\"y\":{}}}",
                    d,
                    num(x),
                    num(y)
                ));
            }
            body.push_str("]}\n");
            Ok((body, split(t0, t1)))
        }
        ServeRequest::Rect { min, max, top } => {
            let (coords, assignments) = require_layout(state)?;
            let t0 = Instant::now();
            let docs = select_rect(coords, *min, *max);
            let t1 = Instant::now();
            let mut body = format!(
                "{{\"kind\":\"rect\",\"x0\":{},\"y0\":{},\"x1\":{},\"y1\":{},\"matches\":{},\"docs\":[",
                num(min.0),
                num(min.1),
                num(max.0),
                num(max.1),
                docs.len()
            );
            for (i, d) in docs.iter().take(*top).enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&format!(
                    "{{\"doc\":{},\"cluster\":{}}}",
                    d, assignments[*d as usize]
                ));
            }
            body.push_str("]}\n");
            Ok((body, split(t0, t1)))
        }
        ServeRequest::Similar {
            doc,
            text,
            top,
            nprobe,
        } => {
            require_ann(state)?;
            let t0 = Instant::now();
            let query: Vec<f64> = match (doc, text) {
                (Some(d), _) => {
                    if state.is_deleted(*d) {
                        return Err(RequestError::bad(format!("document {d} is deleted")));
                    }
                    state
                        .doc_signature(*d)
                        .ok_or_else(|| {
                            RequestError::bad(format!(
                                "unknown document {d} (0..{})",
                                state.total_docs()
                            ))
                        })?
                        .to_vec()
                }
                (None, Some(t)) => state
                    .embed_text(t)
                    .expect("ANN sections checked by require_ann"),
                (None, None) => return Err(RequestError::bad("missing doc= or text=")),
            };
            let (hits, stats) = state.similar(&query, *top, *nprobe);
            let t1 = Instant::now();
            let mut body = String::from("{\"kind\":\"similar\",");
            match (doc, text) {
                (Some(d), _) => body.push_str(&format!("\"doc\":{d},")),
                (_, Some(t)) => body.push_str(&format!("\"text\":\"{}\",", escape(t))),
                _ => unreachable!("parse requires doc= or text="),
            }
            body.push_str(&format!(
                "\"nprobe\":{},\"probed\":{},\"candidates\":{},\"hits\":[",
                nprobe, stats.probed, stats.candidates
            ));
            for (i, h) in hits.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&format!("{{\"doc\":{},\"score\":{}}}", h.doc, num(h.score)));
            }
            body.push_str("]}\n");
            Ok((body, split(t0, t1)))
        }
    }
}

fn require_ann(state: &ServeState) -> Result<(), RequestError> {
    if state.has_ann() {
        Ok(())
    } else {
        Err(RequestError {
            status: 409,
            message: format!(
                "stage {:?} snapshot has no ANN sections; rebuild snapshot",
                state.meta.stage
            ),
        })
    }
}

fn require_index(state: &ServeState) -> Result<(), RequestError> {
    if state.has_index() {
        Ok(())
    } else {
        Err(RequestError {
            status: 409,
            message: format!(
                "stage {:?} snapshot has no inverted index",
                state.meta.stage
            ),
        })
    }
}

/// The layout pair a `/cluster` or `/rect` request drills into:
/// per-document projected coordinates and cluster assignments.
type Layout<'a> = (&'a [(f64, f64)], &'a [u32]);

fn require_layout(state: &ServeState) -> Result<Layout<'_>, RequestError> {
    match (&state.coords, &state.assignments) {
        (Some(c), Some(a)) => Ok((c, a)),
        _ => Err(RequestError {
            status: 409,
            message: format!(
                "stage {:?} snapshot has no clustering/projection to drill into",
                state.meta.stage
            ),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("heart+attack"), "heart attack");
        assert_eq!(percent_decode("a%20AND%20b"), "a AND b");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        assert_eq!(percent_decode(""), "");
    }

    #[test]
    fn target_splitting() {
        let (path, params) = split_target("/search?q=heart+attack&top=5");
        assert_eq!(path, "/search");
        assert_eq!(
            params,
            vec![
                ("q".to_string(), "heart attack".to_string()),
                ("top".to_string(), "5".to_string())
            ]
        );
        let (path, params) = split_target("/healthz");
        assert_eq!(path, "/healthz");
        assert!(params.is_empty());
    }

    #[test]
    fn parse_routes_and_errors() {
        let ok = |t: &str| {
            let (p, q) = split_target(t);
            ServeRequest::parse(p, &q)
        };
        assert!(matches!(
            ok("/term?t=Protein"),
            Ok(ServeRequest::Term { ref term, top: DEFAULT_TOP }) if term == "protein"
        ));
        assert!(ok("/query?q=a+AND+b&top=3").is_ok());
        assert!(ok("/search?q=heart").is_ok());
        assert!(ok("/cluster?c=2").is_ok());
        assert!(ok("/rect?x0=0&y0=0&x1=1&y1=1").is_ok());
        // Rect corners normalize to (min, max).
        match ok("/rect?x0=5&y0=3&x1=-1&y1=0").unwrap() {
            ServeRequest::Rect { min, max, .. } => {
                assert_eq!(min, (-1.0, 0.0));
                assert_eq!(max, (5.0, 3.0));
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            ok("/similar?doc=7"),
            Ok(ServeRequest::Similar {
                doc: Some(7),
                text: None,
                top: DEFAULT_TOP,
                nprobe: DEFAULT_NPROBE
            })
        ));
        assert!(matches!(
            ok("/similar?text=heart+attack&nprobe=3&top=5"),
            Ok(ServeRequest::Similar {
                doc: None,
                text: Some(_),
                top: 5,
                nprobe: 3
            })
        ));
        assert_eq!(ok("/similar").unwrap_err().status, 400);
        assert_eq!(ok("/similar?doc=1&text=x").unwrap_err().status, 400);
        assert_eq!(ok("/similar?doc=abc").unwrap_err().status, 400);
        assert_eq!(ok("/similar?text=").unwrap_err().status, 400);
        assert_eq!(ok("/similar?doc=1&nprobe=0").unwrap_err().status, 400);
        assert_eq!(ok("/nope").unwrap_err().status, 404);
        assert_eq!(ok("/term").unwrap_err().status, 400);
        assert_eq!(ok("/term?t=").unwrap_err().status, 400);
        assert_eq!(ok("/query?q=AND").unwrap_err().status, 400);
        assert_eq!(ok("/rect?x0=0&y0=0&x1=1").unwrap_err().status, 400);
        assert_eq!(ok("/rect?x0=nan&y0=0&x1=1&y1=1").unwrap_err().status, 400);
        assert_eq!(ok("/term?t=x&top=0").unwrap_err().status, 400);
        assert_eq!(ok("/term?t=x&top=abc").unwrap_err().status, 400);
    }

    #[test]
    fn cache_keys_normalize_equivalent_queries() {
        let key = |t: &str| {
            let (p, q) = split_target(t);
            ServeRequest::parse(p, &q).unwrap().cache_key()
        };
        assert_eq!(key("/query?q=a+AND+b"), key("/query?q=a+b"));
        assert_eq!(key("/query?q=a+OR+b"), key("/query?q=(a)+or+(b)"));
        assert_ne!(key("/query?q=a+AND+b"), key("/query?q=a+OR+b"));
        assert_ne!(key("/query?q=a&top=5"), key("/query?q=a&top=6"));
        // Search normalizes through the tokenizer (case, punctuation).
        assert_eq!(key("/search?q=Heart+Attack"), key("/search?q=heart,attack"));
        // Similar text queries normalize the same way; nprobe is keyed.
        assert_eq!(
            key("/similar?text=Heart+Attack"),
            key("/similar?text=heart,attack")
        );
        assert_ne!(
            key("/similar?doc=1&nprobe=2"),
            key("/similar?doc=1&nprobe=3")
        );
        // Different kinds never collide.
        assert_ne!(key("/term?t=a"), key("/search?q=a"));
        assert_ne!(key("/similar?text=a"), key("/search?q=a"));
    }
}
