//! Context-free serving state extracted from an engine snapshot.
//!
//! The engine's query path works against rank-resident state
//! (`ScanOutput` + `InvertedIndex`) through an SPMD context, which is
//! `!Send` by design: it pins one rank's virtual clock and communication
//! accounting to one thread. A long-lived server needs the opposite — an
//! immutable, `Send + Sync` view of the same data that any worker thread
//! can read concurrently with no coordination. [`ServeState`] is that
//! view: opening a snapshot restores the scan and index state once on a
//! throwaway single-rank runtime, copies the (already replicated or
//! single-rank-local) arrays into plain vectors, and drops every runtime
//! handle. Queries then run through the exact same algorithms as the CLI
//! path via [`inspire_core::query::SearchIndex`].

use inspire_core::index::Posting;
use inspire_core::query::SearchIndex;
use inspire_core::snapshot::EngineMeta;
use inspire_core::{EngineSnapshot, Stage, TermId};
use intern::TermTable;
use perfmodel::CostModel;
use spmd::Runtime;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// Immutable, shareable query-serving state from one engine snapshot.
///
/// Holds everything the five query kinds read: the canonical vocabulary,
/// flattened postings with per-term offsets, term statistics, and — for
/// `Final`-stage snapshots — the projected coordinates, cluster
/// assignments, labels, and sizes.
pub struct ServeState {
    /// Snapshot metadata (stage, fingerprints, corpus shape).
    pub meta: EngineMeta,
    /// Canonical sorted vocabulary.
    pub terms: Arc<TermTable>,
    /// Posting-range offsets per term (`vocab_size + 1`); empty when the
    /// snapshot predates the Index stage.
    pub offsets: Vec<i64>,
    /// Packed postings (doc 32 | field 8 | freq 24), term-major.
    pub postings: Vec<u64>,
    /// Document frequency per term.
    pub df: Vec<u32>,
    /// Collection frequency per term.
    pub tf: Vec<u64>,
    /// 2-D document coordinates (Final stage only).
    pub coords: Option<Vec<(f64, f64)>>,
    /// Cluster assignment per document (Final stage only).
    pub assignments: Option<Vec<u32>>,
    /// Topic labels per cluster (Final stage only).
    pub cluster_labels: Vec<Vec<String>>,
    /// Documents per cluster (Final stage only).
    pub cluster_sizes: Vec<u64>,
}

impl ServeState {
    /// Open `path`, verify it (every checksum, via [`EngineSnapshot`]),
    /// and extract the serving state. The snapshot may have been written
    /// at any processor count; queries read only partition-independent
    /// state.
    pub fn load(path: &Path) -> io::Result<ServeState> {
        let snap = EngineSnapshot::open(path)?;
        Self::from_snapshot(&snap)
    }

    /// Extract serving state from an already opened snapshot.
    pub fn from_snapshot(snap: &EngineSnapshot) -> io::Result<ServeState> {
        let meta = snap.meta().clone();
        let stage = meta.stage;
        let rt = Runtime::new(Arc::new(CostModel::zero()));
        let mut res = rt.run(1, |ctx| -> io::Result<ServeState> {
            let scan = snap.restore_scan(ctx)?;
            let (offsets, postings, df, tf) = if stage >= Stage::Index {
                let idx = snap.restore_index(ctx)?;
                let n_postings = *idx.offsets.last().expect("offsets nonempty") as usize;
                (
                    idx.offsets.as_ref().clone(),
                    idx.postings.get(ctx, 0..n_postings),
                    idx.df.as_ref().clone(),
                    idx.tf.as_ref().clone(),
                )
            } else {
                (Vec::new(), Vec::new(), Vec::new(), Vec::new())
            };
            let (coords, assignments, cluster_labels, cluster_sizes) = if stage == Stage::Final {
                let out = snap.restore_output(ctx)?;
                (
                    out.coords,
                    out.all_assignments,
                    out.cluster_labels,
                    out.cluster_sizes,
                )
            } else {
                (None, None, Vec::new(), Vec::new())
            };
            Ok(ServeState {
                meta: snap.meta().clone(),
                terms: Arc::clone(&scan.terms),
                offsets,
                postings,
                df,
                tf,
                coords,
                assignments,
                cluster_labels,
                cluster_sizes,
            })
        });
        res.results.remove(0)
    }

    /// Does this snapshot hold an inverted index (term/boolean/search)?
    pub fn has_index(&self) -> bool {
        !self.offsets.is_empty()
    }

    /// Does this snapshot hold clustering + projection (cluster/rect)?
    pub fn has_layout(&self) -> bool {
        self.coords.is_some() && self.assignments.is_some()
    }
}

impl SearchIndex for ServeState {
    fn term_id(&self, term: &str) -> Option<TermId> {
        self.terms.position(term).map(|i| i as TermId)
    }

    fn postings_of(&self, term: TermId) -> Vec<Posting> {
        let lo = self.offsets[term as usize] as usize;
        let hi = self.offsets[term as usize + 1] as usize;
        // Same unpack + deterministic sort as `InvertedIndex::postings_of`.
        let mut out: Vec<Posting> = self.postings[lo..hi]
            .iter()
            .map(|&e| inspire_core::index::unpack_posting(e))
            .collect();
        out.sort_unstable();
        out
    }

    fn df(&self, term: TermId) -> u32 {
        self.df[term as usize]
    }

    fn total_docs(&self) -> u32 {
        self.meta.total_docs
    }
}
