//! Context-free serving state over an engine snapshot.
//!
//! The engine's query path works against rank-resident state
//! (`ScanOutput` + `InvertedIndex`) through an SPMD context, which is
//! `!Send` by design: it pins one rank's virtual clock and communication
//! accounting to one thread. A long-lived server needs the opposite — an
//! immutable, `Send + Sync` view of the same data that any worker thread
//! can read concurrently with no coordination. [`ServeState`] is that
//! view: it **owns** the validated snapshot and serves queries straight
//! from its section views. Postings stay in their block-compressed
//! on-disk form; each query decodes only the blocks it touches into a
//! per-thread scratch buffer (with skip-pointer seeks for lower-bounded
//! reads), so load time is directory parsing plus the small per-term
//! stats — not a full postings materialization. Queries run through the
//! exact same algorithms as the CLI path via
//! [`inspire_core::query::SearchIndex`].

use inspire_core::ann::{self, AnnIndexView, SearchStats};
use inspire_core::index::Posting;
use inspire_core::query::{Hit, SearchIndex};
use inspire_core::snapshot::{pair_to_posting, EngineMeta, PostingsDir};
use inspire_core::{EngineSnapshot, Stage, TermId};
use inspire_store::codec;
use intern::TermTable;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

thread_local! {
    /// Reusable per-thread decode buffer: one query's block decodes land
    /// here before conversion to [`Posting`]s, so steady-state serving
    /// does no per-query pair allocations.
    static PAIR_SCRATCH: RefCell<Vec<(u32, u32)>> = const { RefCell::new(Vec::new()) };

    /// Per-thread postings-decode accumulator for request tracing:
    /// `None` when no request is being timed (the common case — one
    /// `Cell` read per postings call), `Some(ns)` between
    /// [`decode_timer_begin`] and [`decode_timer_take`].
    static DECODE_NS: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Arm the per-thread postings-decode timer for the current request.
/// Every [`SearchIndex::postings_into`]/[`SearchIndex::postings_from`]
/// call on this thread accumulates its wall time until
/// [`decode_timer_take`] disarms it.
pub fn decode_timer_begin() {
    DECODE_NS.with(|c| c.set(Some(0)));
}

/// Disarm the decode timer and return the accumulated nanoseconds
/// (0 when it was never armed).
pub fn decode_timer_take() -> u64 {
    DECODE_NS.with(|c| c.take()).unwrap_or(0)
}

/// Run `f`, charging its wall time to the armed decode timer (or just
/// running it when the timer is off). Only the two [`SearchIndex`] entry
/// points call this, so overlay-to-base delegation is never counted
/// twice.
fn decode_timed<R>(f: impl FnOnce() -> R) -> R {
    DECODE_NS.with(|c| match c.get() {
        None => f(),
        Some(acc) => {
            let t0 = std::time::Instant::now();
            let out = f();
            let spent = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            c.set(Some(acc.saturating_add(spent)));
            out
        }
    })
}

/// ANN serving state derived from the snapshot's IVF sections at load:
/// the per-list-position code sums the affine kernel expansion needs,
/// the major-term rows that embed free text into signature space, and —
/// under a live overlay — reconstructed signatures for segment documents
/// that are not in the IVF lists yet.
struct AnnState {
    /// Precomputed [`ann::code_sums`] over the `qsig` section, list
    /// order.
    sums: Vec<u32>,
    /// Major-term string → association-matrix row index. Keyed by
    /// string (not term id) so free-text embedding survives the live
    /// overlay's merged vocabulary, whose ids differ from the base's.
    rows: HashMap<String, usize>,
    /// Global doc ids of live-segment documents, ascending (segments
    /// cover disjoint ascending ranges above the base).
    seg_docs: Vec<u32>,
    /// Reconstructed `seg_docs.len() × m` signatures for those
    /// documents: per-term frequency-weighted association rows,
    /// L1-normalized — the same semantics as the engine's signature
    /// stage, rebuilt from segment postings because segments carry no
    /// signature sections. Brute-forced at query time until compaction
    /// folds them into the IVF lists.
    seg_sigs: Vec<f64>,
}

/// How the owned snapshot stores its postings.
enum IndexLayout {
    /// Format v2: block-compressed lists read zero-copy from the
    /// `postblk`/`postskp` sections, located via the parsed directory.
    Compressed(PostingsDir),
    /// Legacy fixed-width `postoff`/`postdat` sections (pre-bump
    /// snapshots keep serving through the sniffing reader).
    Legacy,
}

/// Immutable, shareable query-serving state from one engine snapshot.
///
/// Holds the canonical vocabulary, the postings directory (or legacy
/// offsets), per-term document frequencies, and — for `Final`-stage
/// snapshots — the projected coordinates, cluster assignments, labels,
/// and sizes.
pub struct ServeState {
    /// The validated snapshot; posting bytes are read from its sections
    /// on demand.
    snap: EngineSnapshot,
    /// Snapshot metadata (stage, fingerprints, corpus shape).
    pub meta: EngineMeta,
    /// Canonical sorted vocabulary.
    pub terms: Arc<TermTable>,
    /// Postings layout + per-term document frequency; `None` when the
    /// snapshot predates the Index stage.
    index: Option<(IndexLayout, Vec<u32>)>,
    /// 2-D document coordinates (Final stage only).
    pub coords: Option<Vec<(f64, f64)>>,
    /// Cluster assignment per document (Final stage only).
    pub assignments: Option<Vec<u32>>,
    /// Topic labels per cluster (Final stage only).
    pub cluster_labels: Vec<Vec<String>>,
    /// Documents per cluster (Final stage only).
    pub cluster_sizes: Vec<u64>,
    /// IVF similarity-search state; `None` when the snapshot predates
    /// the ANN sections (similarity requests then get a clear 409).
    ann: Option<AnnState>,
    /// Merge-on-read overlay: ingest segments unioned with the base
    /// snapshot at query time. `None` for plain snapshot serving. When
    /// set, `terms` is the merged vocabulary and every [`SearchIndex`]
    /// method routes through the overlay.
    pub(crate) live: Option<crate::live::LiveIndex>,
    /// Ingest-manifest generation this state was built from (0 for
    /// plain snapshots).
    pub generation: u64,
    /// `last_seal_unix` of the manifest (0 for plain snapshots).
    pub last_seal_unix: u64,
    /// The ingest directory this state was built from, when live
    /// serving ([`crate::live::load_live_state`]); lets `/metrics`
    /// compute WAL backlog gauges and read the ingest metrics sidecar.
    pub ingest_dir: Option<PathBuf>,
}

impl ServeState {
    /// Open `path`, verify it (every checksum, via [`EngineSnapshot`]),
    /// and build the serving state. The snapshot may have been written
    /// at any processor count; queries read only partition-independent
    /// state.
    pub fn load(path: &Path) -> io::Result<ServeState> {
        Self::from_snapshot(EngineSnapshot::open(path)?)
    }

    /// Build serving state over an already opened snapshot. Cheap: the
    /// vocabulary, postings directory, and df stats are materialized
    /// (all small); posting lists are not touched until queried.
    pub fn from_snapshot(snap: EngineSnapshot) -> io::Result<ServeState> {
        let meta = snap.meta().clone();
        let terms = Arc::new(snap.terms()?);
        let index = if meta.stage >= Stage::Index {
            let layout = if snap.has_compressed_index() {
                IndexLayout::Compressed(snap.postings_dir()?)
            } else {
                IndexLayout::Legacy
            };
            Some((layout, snap.decode_df()?))
        } else {
            None
        };
        let (coords, assignments, cluster_labels, cluster_sizes) = if meta.stage == Stage::Final {
            let dims = meta.projection_dims;
            let coordnd = snap.store().require("coordnd")?.as_f64s()?;
            let coords: Vec<(f64, f64)> = coordnd.chunks(dims).map(|r| (r[0], r[1])).collect();
            let assignments = snap.store().require("assign")?.as_u32s()?.to_vec();
            let cluster_sizes = snap.store().require("csize")?.as_u64s()?.to_vec();
            (
                Some(coords),
                Some(assignments),
                snap.labels()?,
                cluster_sizes,
            )
        } else {
            (None, None, Vec::new(), Vec::new())
        };
        let ann = if snap.has_ann() {
            let m = meta.m_dims;
            let codes = snap.store().require("qsig")?.as_records(m)?;
            let major = snap.store().require("major")?.as_u32s()?;
            let rows = major
                .iter()
                .enumerate()
                .map(|(i, &t)| (terms.get(t as usize).to_string(), i))
                .collect();
            Some(AnnState {
                sums: ann::code_sums(codes, m),
                rows,
                seg_docs: Vec::new(),
                seg_sigs: Vec::new(),
            })
        } else {
            None
        };
        Ok(ServeState {
            meta,
            terms,
            index,
            coords,
            assignments,
            cluster_labels,
            cluster_sizes,
            snap,
            ann,
            live: None,
            generation: 0,
            last_seal_unix: 0,
            ingest_dir: None,
        })
    }

    /// Does this snapshot hold an inverted index (term/boolean/search)?
    pub fn has_index(&self) -> bool {
        self.index.is_some()
    }

    /// Number of ingest segments merged into this view (0 for plain
    /// snapshot serving).
    pub fn segments_open(&self) -> usize {
        self.live.as_ref().map_or(0, |l| l.segments_open())
    }

    /// Does this snapshot hold clustering + projection (cluster/rect)?
    pub fn has_layout(&self) -> bool {
        self.coords.is_some() && self.assignments.is_some()
    }

    /// Borrow the underlying validated snapshot (postings directory,
    /// section sizes — what benches and diagnostics need).
    pub fn snapshot(&self) -> &EngineSnapshot {
        &self.snap
    }

    /// Borrow a section validated at open. Sections were checked for
    /// presence, kind, and CRC by [`EngineSnapshot::from_store`], so a
    /// miss here is a programming error, not a data error.
    fn packed(&self, name: &str) -> &[u8] {
        self.snap
            .store()
            .section(name)
            .expect("section validated at open")
            .as_packed()
            .expect("section kind validated at open")
    }

    /// Borrow an `f64` section validated at open.
    fn f64s(&self, name: &str) -> &[f64] {
        self.snap
            .store()
            .section(name)
            .expect("section validated at open")
            .as_f64s()
            .expect("section kind validated at open")
    }

    /// Does this snapshot carry the IVF + quantized-signature sections
    /// (`/similar` queries)?
    pub fn has_ann(&self) -> bool {
        self.ann.is_some()
    }

    /// Assemble the borrowed ANN view over the snapshot's validated
    /// sections plus the precomputed code sums.
    fn ann_view<'a>(&'a self, ann: &'a AnnState) -> AnnIndexView<'a> {
        let m = self.meta.m_dims;
        AnnIndexView {
            k: self.meta.k,
            m,
            centroids: self.f64s("centroid"),
            ivfoff: self
                .snap
                .store()
                .section("ivfoff")
                .expect("section validated at open")
                .as_u64s()
                .expect("section kind validated at open"),
            ivfdoc: self
                .snap
                .store()
                .section("ivfdoc")
                .expect("section validated at open")
                .as_u32s()
                .expect("section kind validated at open"),
            codes: self
                .snap
                .store()
                .section("qsig")
                .expect("section validated at open")
                .as_records(m)
                .expect("section record size validated at open"),
            scale: self.f64s("qscale"),
            offset: self.f64s("qoff"),
            norm: self.f64s("signrm"),
            sums: &ann.sums,
            exact: self.f64s("sigs"),
        }
    }

    /// Is `doc` tombstoned by the live overlay?
    pub fn is_deleted(&self, doc: u32) -> bool {
        self.live.as_ref().is_some_and(|l| l.is_deleted(doc))
    }

    /// Exact signature of a document: base documents read their `sigs`
    /// row, live-segment documents their reconstructed row. `None` for
    /// unknown doc ids or when the snapshot has no ANN sections.
    pub fn doc_signature(&self, doc: u32) -> Option<&[f64]> {
        let ann = self.ann.as_ref()?;
        let m = self.meta.m_dims;
        if (doc as usize) < self.meta.total_docs as usize {
            let sigs = self.f64s("sigs");
            return Some(&sigs[doc as usize * m..(doc as usize + 1) * m]);
        }
        let i = ann.seg_docs.binary_search(&doc).ok()?;
        Some(&ann.seg_sigs[i * m..(i + 1) * m])
    }

    /// Embed free text into signature space: tokenize, map tokens onto
    /// major-term association rows, and combine them exactly like the
    /// engine's signature stage ([`ann::embed_rows`]). Rows accumulate
    /// in ascending row order so the float sum is deterministic. `None`
    /// when the snapshot has no ANN sections.
    pub fn embed_text(&self, text: &str) -> Option<Vec<f64>> {
        let ann = self.ann.as_ref()?;
        let tokenizer = inspire_core::tokenize::Tokenizer::default();
        let mut freqs: HashMap<usize, f64> = HashMap::new();
        tokenizer.tokenize_into(text, |t| {
            if let Some(&r) = ann.rows.get(t) {
                *freqs.entry(r).or_insert(0.0) += 1.0;
            }
        });
        let mut pairs: Vec<(usize, f64)> = freqs.into_iter().collect();
        pairs.sort_unstable_by_key(|&(r, _)| r);
        Some(ann::embed_rows(
            pairs.into_iter(),
            self.f64s("assoc"),
            self.meta.m_dims,
        ))
    }

    /// IVF similarity search over the base snapshot, merged with a
    /// brute-force scan of any live-segment signatures and filtered for
    /// tombstones. Returns the top hits (exact `f64` cosine, score
    /// descending then doc ascending) plus the probe/candidate
    /// counters. Empty when the snapshot has no ANN sections.
    pub fn similar(&self, query: &[f64], top: usize, nprobe: usize) -> (Vec<Hit>, SearchStats) {
        let mut stats = SearchStats::default();
        let Some(ann) = &self.ann else {
            return (Vec::new(), stats);
        };
        let tombs: &[u32] = self.live.as_ref().map_or(&[], |l| l.tombstones());
        // Over-fetch by the tombstone count: deletions can knock at most
        // that many hits out of any top list.
        let fetch = top + tombs.len();
        let view = self.ann_view(ann);
        let mut hits = ann::search(&view, query, fetch, nprobe, &mut stats);
        if !ann.seg_docs.is_empty() {
            let m = self.meta.m_dims;
            stats.candidates += ann.seg_docs.len();
            let seg_hits = ann::exhaustive(&ann.seg_sigs, m, query, fetch);
            hits.extend(seg_hits.into_iter().map(|h| Hit {
                doc: ann.seg_docs[h.doc as usize],
                score: h.score,
            }));
        }
        if !tombs.is_empty() {
            hits.retain(|h| tombs.binary_search(&h.doc).is_err());
        }
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap()
                .then(a.doc.cmp(&b.doc))
        });
        hits.truncate(top);
        (hits, stats)
    }

    /// Reconstruct signatures for live-segment documents so `/similar`
    /// can brute-force them (segments carry postings but no signature
    /// sections). Called by [`crate::live::load_live_state`] once the
    /// segments are open; a no-op when the base has no ANN sections.
    pub(crate) fn attach_segment_signatures(&mut self, segments: &[inspire_ingest::Segment]) {
        let Some(ann) = &self.ann else { return };
        let m = self.meta.m_dims;
        let assoc = self.f64s("assoc");
        let mut seg_docs: Vec<u32> = Vec::new();
        let mut seg_sigs: Vec<f64> = Vec::new();
        let mut posts: Vec<Posting> = Vec::new();
        for seg in segments {
            let base = seg.doc_base();
            let count = seg.doc_count() as usize;
            let off = seg_sigs.len();
            seg_docs.extend(base..seg.doc_end());
            seg_sigs.resize(off + count * m, 0.0);
            for (local, term) in seg.terms().iter().enumerate() {
                let Some(&row) = ann.rows.get(term) else {
                    continue;
                };
                let arow = &assoc[row * m..(row + 1) * m];
                posts.clear();
                seg.postings_into(local as u32, &mut posts);
                // Summing per-(doc, field) postings weights each term by
                // its doc-total frequency — the signature-stage rule.
                for p in &posts {
                    let d = (p.doc - base) as usize;
                    let sig = &mut seg_sigs[off + d * m..off + (d + 1) * m];
                    let w = p.freq as f64;
                    for (s, &a) in sig.iter_mut().zip(arow) {
                        *s += w * a;
                    }
                }
            }
            for d in 0..count {
                let sig = &mut seg_sigs[off + d * m..off + (d + 1) * m];
                let l1: f64 = sig.iter().map(|x| x.abs()).sum();
                if l1 > 0.0 {
                    for s in sig.iter_mut() {
                        *s /= l1;
                    }
                }
            }
        }
        let ann = self.ann.as_mut().expect("checked above");
        ann.seg_docs = seg_docs;
        ann.seg_sigs = seg_sigs;
    }
}

impl SearchIndex for ServeState {
    fn term_id(&self, term: &str) -> Option<TermId> {
        self.terms.position(term).map(|i| i as TermId)
    }

    fn postings_of(&self, term: TermId) -> Vec<Posting> {
        let mut out = Vec::new();
        self.postings_into(term, &mut out);
        out
    }

    fn postings_into(&self, term: TermId, out: &mut Vec<Posting>) {
        decode_timed(|| {
            if let Some(live) = &self.live {
                live.postings_into(self, term, out);
                return;
            }
            self.base_postings_into(term, out);
        })
    }

    fn postings_from(&self, term: TermId, min_doc: u32, out: &mut Vec<Posting>) {
        decode_timed(|| {
            if let Some(live) = &self.live {
                live.postings_from(self, term, min_doc, out);
                return;
            }
            self.base_postings_from(term, min_doc, out);
        })
    }

    fn df(&self, term: TermId) -> u32 {
        match &self.live {
            Some(live) => live.df(term),
            None => self.base_df(term),
        }
    }

    fn total_docs(&self) -> u32 {
        match &self.live {
            Some(live) => live.total_docs(),
            None => self.meta.total_docs,
        }
    }
}

impl ServeState {
    /// Postings of a **base-local** term id, straight from the owned
    /// snapshot (ignoring any live overlay). The overlay calls this for
    /// the base component of a merged list.
    pub(crate) fn base_postings_into(&self, term: TermId, out: &mut Vec<Posting>) {
        let Some((layout, _)) = &self.index else {
            return;
        };
        match layout {
            IndexLayout::Compressed(dir) => {
                let blk = self.packed("postblk");
                let n = dir.count(term) as usize;
                PAIR_SCRATCH.with(|s| {
                    let mut pairs = s.borrow_mut();
                    pairs.clear();
                    codec::decode_list(&blk[dir.byte_range(term)], n, &mut pairs)
                        .expect("CRC-verified postings decode");
                    out.extend(pairs.iter().map(|&(k, v)| pair_to_posting(k, v)));
                });
            }
            IndexLayout::Legacy => {
                let offsets = self.legacy_offsets();
                let postdat = self.legacy_postings();
                let lo = offsets[term as usize] as usize;
                let hi = offsets[term as usize + 1] as usize;
                // Same unpack + deterministic sort as
                // `InvertedIndex::postings_of` (scatter order is
                // schedule-dependent in legacy snapshots).
                let from = out.len();
                out.extend(
                    postdat[lo..hi]
                        .iter()
                        .map(|&e| inspire_core::index::unpack_posting(e)),
                );
                out[from..].sort_unstable();
            }
        }
    }

    /// Lower-bounded postings of a **base-local** term id.
    pub(crate) fn base_postings_from(&self, term: TermId, min_doc: u32, out: &mut Vec<Posting>) {
        let Some((layout, _)) = &self.index else {
            return;
        };
        match layout {
            IndexLayout::Compressed(dir) => {
                let blk = self.packed("postblk");
                let skips = self
                    .snap
                    .store()
                    .section("postskp")
                    .expect("section validated at open")
                    .as_skips()
                    .expect("section kind validated at open");
                let n = dir.count(term) as usize;
                PAIR_SCRATCH.with(|s| {
                    let mut pairs = s.borrow_mut();
                    pairs.clear();
                    codec::decode_from(
                        &blk[dir.byte_range(term)],
                        n,
                        &skips[dir.skip_range(term)],
                        min_doc,
                        &mut pairs,
                    )
                    .expect("CRC-verified postings decode");
                    out.extend(pairs.iter().map(|&(k, v)| pair_to_posting(k, v)));
                });
            }
            IndexLayout::Legacy => {
                // Decode + sort the full list, then drop the sorted
                // prefix below `min_doc`.
                let from = out.len();
                self.base_postings_into(term, out);
                let below = out[from..].partition_point(|p| p.doc < min_doc);
                out.drain(from..from + below);
            }
        }
    }

    /// Document frequency of a **base-local** term id.
    pub(crate) fn base_df(&self, term: TermId) -> u32 {
        match &self.index {
            Some((_, df)) => df[term as usize],
            None => 0,
        }
    }

    fn legacy_offsets(&self) -> &[i64] {
        self.snap
            .store()
            .section("postoff")
            .expect("section validated at open")
            .as_i64s()
            .expect("section kind validated at open")
    }

    fn legacy_postings(&self) -> &[u64] {
        self.snap
            .store()
            .section("postdat")
            .expect("section validated at open")
            .as_u64s()
            .expect("section kind validated at open")
    }
}
