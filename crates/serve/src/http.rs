//! Hand-rolled HTTP/1.1 subset: request-head parsing, response writing,
//! and a minimal blocking client for the load generator and tests.
//!
//! The server speaks exactly what its clients need and nothing more:
//! `GET` requests, one request per connection (`Connection: close` on
//! every response), bodies only in responses, `Content-Length` framing.
//! The parser is a total function over byte buffers — malformed input
//! maps to a status code, never a panic — and enforces hard limits on
//! the request head so a slow or hostile client cannot balloon memory.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Longest accepted request head (request line + all headers + CRLFCRLF).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Longest accepted request-target (path + query string).
pub const MAX_TARGET_BYTES: usize = 4 * 1024;

/// A parsed request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    /// Origin-form target: `/path?query`.
    pub target: String,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
}

/// A protocol-level rejection: the HTTP status to answer with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    pub status: u16,
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

/// Reason phrases for every status this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Content Too Large",
        414 => "URI Too Long",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Parse a complete request head (everything through `\r\n\r\n`).
///
/// Total: every malformed input returns an [`HttpError`] (400 for syntax,
/// 405 for non-GET methods, 414 for oversized targets), never panics.
pub fn parse_head(head: &[u8]) -> Result<Request, HttpError> {
    let text =
        std::str::from_utf8(head).map_err(|_| HttpError::new(400, "request head is not UTF-8"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::new(400, "empty request"))?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::new(
                400,
                format!("malformed request line {request_line:?}"),
            ))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::new(
            400,
            format!("unsupported protocol {version:?}"),
        ));
    }
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::new(400, format!("malformed method {method:?}")));
    }
    if method != "GET" {
        return Err(HttpError::new(405, format!("method {method} not allowed")));
    }
    if target.len() > MAX_TARGET_BYTES {
        return Err(HttpError::new(414, "request target too long"));
    }
    if !target.starts_with('/') {
        return Err(HttpError::new(
            400,
            format!("target {target:?} is not origin-form"),
        ));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break; // the CRLFCRLF terminator
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(400, format!("malformed header {line:?}")));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::new(
                400,
                format!("malformed header name {name:?}"),
            ));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
    })
}

/// Read a request head from `stream` (everything through `\r\n\r\n`),
/// enforcing [`MAX_HEAD_BYTES`] (→ 413) and the stream's read timeout
/// (→ 408). GET requests carry no body, so nothing further is read.
pub fn read_head(stream: &mut TcpStream) -> Result<Vec<u8>, HttpError> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        if buf.windows(4).any(|w| w == b"\r\n\r\n") {
            return Ok(buf);
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::new(413, "request head too large"));
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(HttpError::new(400, "connection closed mid-request"));
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(HttpError::new(408, "timed out reading request"));
            }
            Err(e) => return Err(HttpError::new(400, format!("read failed: {e}"))),
        }
    }
}

/// Write one response and flush. `extra_headers` are raw `Name: value`
/// lines (no CRLF).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    extra_headers: &[&str],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    );
    for h in extra_headers {
        head.push_str(h);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// JSON error body for `err`, shared by all error responses.
pub fn error_body(err: &HttpError) -> String {
    format!(
        "{{\"error\":\"{}\",\"status\":{}}}\n",
        inspire_trace::json::escape(&err.message),
        err.status
    )
}

/// A client-side response.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl Response {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Blocking GET against `addr` (the whole exchange bounded by `timeout`):
/// opens a fresh connection, sends the request, reads to EOF, parses the
/// status line, headers, and body.
pub fn get(addr: SocketAddr, path: &str, timeout: Duration) -> io::Result<Response> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// Parse a full response buffer (head + body).
pub fn parse_response(raw: &[u8]) -> io::Result<Response> {
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("no header terminator in response"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            headers.push((k.to_ascii_lowercase(), v.trim().to_string()));
        }
    }
    let body_raw = &raw[head_end + 4..];
    let body_len = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(body_raw.len())
        .min(body_raw.len());
    let body =
        String::from_utf8(body_raw[..body_len].to_vec()).map_err(|_| bad("non-UTF-8 body"))?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Request, HttpError> {
        parse_head(s.as_bytes())
    }

    #[test]
    fn parses_a_plain_get() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert_eq!(req.headers.len(), 2);
        assert_eq!(req.headers[0], ("host".to_string(), "x".to_string()));
    }

    #[test]
    fn malformed_request_lines_are_400_never_panic() {
        for bad in [
            "",
            "\r\n\r\n",
            "GET\r\n\r\n",
            "GET /x\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "GET /x SMTP/1.0\r\n\r\n",
            " GET /x HTTP/1.1\r\n\r\n",
            "GET relative HTTP/1.1\r\n\r\n",
            "G@T /x HTTP/1.1\r\n\r\n",
            "get /x HTTP/1.1\r\n\r\n",
        ] {
            let err = parse(bad).unwrap_err();
            assert_eq!(err.status, 400, "{bad:?} -> {err:?}");
        }
    }

    #[test]
    fn non_get_methods_are_405() {
        for m in ["POST", "PUT", "DELETE", "HEAD", "OPTIONS"] {
            let err = parse(&format!("{m} /x HTTP/1.1\r\n\r\n")).unwrap_err();
            assert_eq!(err.status, 405, "{m}");
        }
    }

    #[test]
    fn malformed_headers_are_400() {
        for bad in [
            "GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "GET /x HTTP/1.1\r\n: empty-name\r\n\r\n",
            "GET /x HTTP/1.1\r\nbad name: v\r\n\r\n",
        ] {
            let err = parse(bad).unwrap_err();
            assert_eq!(err.status, 400, "{bad:?}");
        }
    }

    #[test]
    fn oversized_target_is_414() {
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_TARGET_BYTES + 1));
        assert_eq!(parse(&long).unwrap_err().status, 414);
    }

    #[test]
    fn non_utf8_head_is_400() {
        assert_eq!(
            parse_head(b"GET /\xff\xfe HTTP/1.1\r\n\r\n")
                .unwrap_err()
                .status,
            400
        );
    }

    #[test]
    fn response_round_trip() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 5\r\n\r\n{\"a\":";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "{\"a\":");
        assert_eq!(resp.header("content-type"), Some("application/json"));
    }

    #[test]
    fn error_body_is_json() {
        let e = HttpError::new(404, "unknown route \"/nope\"");
        let body = error_body(&e);
        let v = inspire_trace::json::parse(&body).expect("error body parses");
        assert_eq!(v.get("status").and_then(|s| s.as_f64()), Some(404.0));
    }
}
