//! The serving loop: accept thread, worker pool, bounded queue,
//! result cache, metrics, and graceful shutdown.
//!
//! One accept thread owns the listener and pushes connections into a
//! bounded queue; when the queue is full it answers `429` with
//! `Retry-After` on the accept thread itself so overload is rejected in
//! microseconds instead of queued into timeout. A fixed-width
//! [`spmd::IntraPool`] — the same pool the engine uses for intra-rank
//! data parallelism — runs the workers: each worker blocks on the queue,
//! speaks one request per connection, and consults the shared LRU cache
//! before executing. Shutdown flips one flag: the accept thread stops
//! accepting immediately, workers drain everything already queued, and
//! [`Server::shutdown`] joins all threads before returning the final
//! counters.

use crate::http::{self, HttpError};
use crate::lru::{CacheStats, LruCache};
use crate::request::{self, ServeRequest};
use crate::state::ServeState;
use inspire_trace::json::num;
use inspire_trace::log;
use inspire_trace::{Registry, ReqTimeline, ReqTrace, SlowLog};
use spmd::IntraPool;
use std::collections::VecDeque;
use std::fs::File;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tunables. Defaults match the CLI defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads answering queries.
    pub workers: usize,
    /// Result-cache capacity in entries.
    pub cache_capacity: usize,
    /// Accepted-but-unserved connection bound; beyond it, 429.
    pub queue_depth: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Record a per-request span timeline on every request (feeds the
    /// slow-query ring and the access log). Observational only: served
    /// bodies are byte-identical either way. Off = the untraced
    /// baseline the load generator measures overhead against.
    pub trace_requests: bool,
    /// Worst-N request timelines retained for `/debug/slow`.
    pub slow_log_n: usize,
    /// Minimum total milliseconds before a timeline may enter the slow
    /// ring (0 = keep the worst N regardless of absolute latency).
    pub slow_threshold_ms: u64,
    /// Structured access-log destination; `None` logs to stderr. Lines
    /// are emitted (and the file created) only when `INSPIRE_LOG` is
    /// `info` or lower.
    pub access_log: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 8,
            cache_capacity: 1024,
            queue_depth: 256,
            read_timeout: Duration::from_secs(5),
            trace_requests: true,
            slow_log_n: 32,
            slow_threshold_ms: 0,
            access_log: None,
        }
    }
}

/// Final counters returned by [`Server::shutdown`].
#[derive(Debug, Clone, Copy)]
pub struct ServeSummary {
    pub served: u64,
    pub errors: u64,
    pub rejected_429: u64,
    pub max_in_flight: usize,
    pub cache: CacheStats,
}

/// State shared by the accept thread and every worker.
struct Shared {
    /// The serving state, swappable at a generation flip
    /// ([`Server::swap_state`]). Workers clone the `Arc` once per
    /// request, so in-flight requests finish on the state they started
    /// with — a flip never 5xxes anything.
    state: RwLock<Arc<ServeState>>,
    /// Bumped on every swap; prefixes cache keys so entries computed
    /// against an older state can neither be served nor inserted as
    /// current after a flip.
    epoch: AtomicU64,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    queue_depth: usize,
    read_timeout: Duration,
    shutdown: AtomicBool,
    cache: Mutex<LruCache>,
    registry: Mutex<Registry>,
    served: AtomicU64,
    errors: AtomicU64,
    rejected_429: AtomicU64,
    in_flight: AtomicUsize,
    max_in_flight: AtomicUsize,
    started: Instant,
    /// Monotonic request-id source (traced requests only).
    next_req_id: AtomicU64,
    /// Whether workers build per-request timelines at all.
    trace_requests: bool,
    /// Worst-N request timelines for `/debug/slow`.
    slow: SlowLog,
    /// Access-log sink; `None` = stderr. Opened (and the file created)
    /// only when `INSPIRE_LOG` enables info-level lines.
    access: Option<Mutex<File>>,
}

/// A running server. Dropping the handle without calling
/// [`Server::shutdown`] leaks the threads; always shut down.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    pool_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, spin up the worker pool, and start accepting.
    pub fn start(state: Arc<ServeState>, cfg: &ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let workers = cfg.workers.max(1);
        let access = match &cfg.access_log {
            // The file is not even created unless logging is enabled:
            // with INSPIRE_LOG unset the access log is bit-invisible.
            Some(path) if log::enabled(log::Level::Info) => Some(Mutex::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            )),
            _ => None,
        };
        let shared = Arc::new(Shared {
            state: RwLock::new(state),
            epoch: AtomicU64::new(0),
            queue: Mutex::new(VecDeque::with_capacity(cfg.queue_depth)),
            available: Condvar::new(),
            queue_depth: cfg.queue_depth.max(1),
            read_timeout: cfg.read_timeout,
            shutdown: AtomicBool::new(false),
            cache: Mutex::new(LruCache::new(cfg.cache_capacity)),
            registry: Mutex::new(Registry::new()),
            served: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            rejected_429: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            max_in_flight: AtomicUsize::new(0),
            started: Instant::now(),
            next_req_id: AtomicU64::new(0),
            trace_requests: cfg.trace_requests,
            slow: SlowLog::new(cfg.slow_log_n, cfg.slow_threshold_ms.saturating_mul(1_000)),
            access,
        });

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || accept_loop(listener, &accept_shared))?;

        // The worker pool is the engine's own IntraPool: `workers` chunks
        // of one item each, so every chunk becomes one long-lived worker
        // loop on its own pool thread. `map_chunks` blocks until all
        // workers return, so it runs on a dedicated host thread.
        let pool_shared = Arc::clone(&shared);
        let pool_thread = std::thread::Builder::new()
            .name("serve-pool".to_string())
            .spawn(move || {
                let pool = IntraPool::new(workers);
                pool.map_chunks(workers, 1, |_range| worker_loop(&pool_shared));
            })?;

        Ok(Server {
            local_addr,
            shared,
            accept_thread: Some(accept_thread),
            pool_thread: Some(pool_thread),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Render the `/metrics` JSON right now.
    pub fn metrics_json(&self) -> String {
        metrics_json(&self.shared)
    }

    /// Atomically replace the serving state (an ingest-generation
    /// flip). In-flight requests keep the state they cloned; new
    /// requests see `next`. The cache epoch is bumped so pre-flip
    /// bodies can no longer be served or inserted.
    pub fn swap_state(&self, next: Arc<ServeState>) {
        *self.shared.state.write().unwrap() = next;
        self.shared.epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// Generation of the state currently being served.
    pub fn generation(&self) -> u64 {
        self.shared.state.read().unwrap().generation
    }

    /// Stop accepting, drain every queued and in-flight request, join
    /// all threads, and return the final counters.
    pub fn shutdown(mut self) -> ServeSummary {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.pool_thread.take() {
            let _ = t.join();
        }
        ServeSummary {
            served: self.shared.served.load(Ordering::Relaxed),
            errors: self.shared.errors.load(Ordering::Relaxed),
            rejected_429: self.shared.rejected_429.load(Ordering::Relaxed),
            max_in_flight: self.shared.max_in_flight.load(Ordering::Relaxed),
            cache: self.shared.cache.lock().unwrap().stats(),
        }
    }
}

/// Accept until shutdown. Nonblocking accept + short sleep so the
/// shutdown flag is observed within a millisecond; the backpressure
/// check runs here so a full queue answers 429 without ever touching
/// the worker pool.
fn accept_loop(listener: TcpListener, shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                let mut q = shared.queue.lock().unwrap();
                if q.len() < shared.queue_depth {
                    q.push_back(stream);
                    drop(q);
                    shared.available.notify_one();
                } else {
                    drop(q);
                    shared.rejected_429.fetch_add(1, Ordering::Relaxed);
                    let err = HttpError {
                        status: 429,
                        message: "server saturated, retry shortly".to_string(),
                    };
                    let _ = http::write_response(
                        &mut stream,
                        429,
                        "application/json",
                        &http::error_body(&err),
                        &["Retry-After: 1"],
                    );
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    // Dropping the listener here closes the socket, so the port is free
    // the moment shutdown begins.
}

/// One worker: pop connections until shutdown *and* the queue is empty,
/// so everything accepted before shutdown is still answered.
fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(s) = q.pop_front() {
                    break Some(s);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _timed_out) = shared
                    .available
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap();
                q = guard;
            }
        };
        let Some(mut stream) = stream else { return };
        let now_in_flight = shared.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        shared
            .max_in_flight
            .fetch_max(now_in_flight, Ordering::SeqCst);
        handle_connection(shared, &mut stream);
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Per-request tracing context threaded from the connection handler
/// through routing and execution. When `traced` is off every method is
/// a no-op, so the untraced path pays only the flag checks.
struct ReqCtx {
    traced: bool,
    tr: ReqTrace,
    /// Full request target (`/query?q=…`), once the head parsed.
    detail: String,
    cache_hit: bool,
    /// Set once the target parsed as one of the five query kinds; only
    /// those are eligible for the slow ring.
    is_query: bool,
    generation: u64,
    epoch: u64,
}

impl ReqCtx {
    fn new(traced: bool) -> ReqCtx {
        ReqCtx {
            traced,
            tr: ReqTrace::start(),
            detail: String::new(),
            cache_hit: false,
            is_query: false,
            generation: 0,
            epoch: 0,
        }
    }

    /// Open stage `name` (closing any open stage).
    fn begin(&mut self, name: &'static str) {
        if self.traced {
            self.tr.begin(name);
        }
    }

    /// Close the open stage.
    fn end(&mut self) {
        if self.traced {
            self.tr.end();
        }
    }
}

/// Speak one request/response exchange on `stream`.
///
/// With tracing on, the timeline covers first byte through response
/// ready (`parse` opens before the head is read); the socket write is
/// deliberately outside it, so per-stage micros account for the
/// server-side work, not the client's read speed.
fn handle_connection(shared: &Shared, stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.read_timeout));
    let mut ctx = ReqCtx::new(shared.trace_requests);
    let id = if ctx.traced {
        shared.next_req_id.fetch_add(1, Ordering::Relaxed) + 1
    } else {
        0
    };
    ctx.begin("parse");
    let outcome = http::read_head(stream)
        .and_then(|head| http::parse_head(&head))
        .and_then(|req| {
            if ctx.traced {
                ctx.detail = req.target.clone();
            }
            respond(shared, &req.target, &mut ctx)
        });
    let (status, body, content_type) = match outcome {
        Ok((body, ct)) => (200u16, body, ct),
        Err(err) => (err.status, http::error_body(&err), "application/json"),
    };
    if ctx.traced {
        record_request(shared, ctx, id, status, &body);
    }
    if status == 200 {
        shared.served.fetch_add(1, Ordering::Relaxed);
        let _ = http::write_response(stream, 200, content_type, &body, &[]);
    } else {
        shared.errors.fetch_add(1, Ordering::Relaxed);
        let _ = http::write_response(stream, status, content_type, &body, &[]);
        if status == 413 {
            // The client sent more than we read. Closing now would
            // RST the connection and discard the response we just
            // wrote; drain (bounded) so close sends a clean FIN.
            drain(stream);
        }
    }
}

/// Finish one traced request: close the timeline, offer it to the slow
/// ring (query kinds only, after the lock-free floor check), and emit
/// one structured access-log line when `INSPIRE_LOG` is `info`+.
fn record_request(shared: &Shared, mut ctx: ReqCtx, id: u64, status: u16, body: &str) {
    let (spans, total_us) = std::mem::take(&mut ctx.tr).finish();
    let want_slow = ctx.is_query && shared.slow.would_admit(total_us);
    let want_access = log::enabled(log::Level::Info);
    if !want_slow && !want_access {
        return;
    }
    let route = ctx.detail.split('?').next().unwrap_or("").to_string();
    let timeline = ReqTimeline {
        id,
        route,
        detail: ctx.detail,
        status,
        cache_hit: ctx.cache_hit,
        generation: ctx.generation,
        epoch: ctx.epoch,
        bytes: body.len() as u64,
        total_us,
        spans,
    };
    if want_access {
        let line = timeline.access_line();
        match &shared.access {
            Some(file) => {
                use std::io::Write;
                let mut file = file.lock().unwrap();
                let _ = writeln!(file, "{line}");
            }
            // Pure JSON on stderr, one line per request — no level
            // prefix, so the stream stays machine-parseable.
            None => eprintln!("{line}"),
        }
    }
    if want_slow {
        shared.slow.offer(timeline);
    }
}

/// Best-effort bounded read-and-discard of whatever the peer already
/// sent, so the subsequent close delivers the response.
fn drain(stream: &mut TcpStream) {
    use std::io::Read;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut scratch = [0u8; 4096];
    let mut total = 0usize;
    while total < 256 * 1024 {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => total += n,
        }
    }
}

/// Route one target to its response body. Query kinds go through the
/// cache; the latency histograms (`serve_<kind>_seconds` plus the
/// overall `serve_request_seconds`) observe the full lookup-or-execute
/// path per kind either way.
fn respond(
    shared: &Shared,
    target: &str,
    ctx: &mut ReqCtx,
) -> Result<(String, &'static str), HttpError> {
    let (path, params) = request::split_target(target);
    let format = params
        .iter()
        .find(|(k, _)| k == "format")
        .map(|(_, v)| v.as_str());
    match path {
        "/healthz" => {
            ctx.end();
            return Ok(("ok\n".to_string(), "text/plain"));
        }
        "/metrics" => {
            ctx.end();
            // Content negotiation by explicit parameter: Prometheus
            // text exposition on `?format=prom`, JSON otherwise (the
            // default the smoke tests byte-compare against).
            return Ok(match format {
                Some("prom") => (metrics_prom(shared), "text/plain; version=0.0.4"),
                _ => (metrics_json(shared), "application/json"),
            });
        }
        "/debug/slow" => {
            ctx.end();
            return Ok(match format {
                Some("chrome") => (shared.slow.to_chrome_json(), "application/json"),
                _ => (shared.slow.to_json(), "application/json"),
            });
        }
        _ => {}
    }
    let req = ServeRequest::parse(path, &params).map_err(|e| HttpError {
        status: e.status,
        message: e.message,
    })?;
    // The `parse` stage ends once the target is a typed request; only
    // typed query requests are slow-ring eligible.
    ctx.end();
    ctx.is_query = true;
    let t0 = Instant::now();
    let body = answer(shared, &req, ctx)?;
    let elapsed = t0.elapsed();
    let mut registry = shared.registry.lock().unwrap();
    registry.observe(&format!("serve_{}_seconds", req.kind()), elapsed);
    registry.observe("serve_request_seconds", elapsed);
    Ok((body, "application/json"))
}

/// Cache-or-execute for one parsed request. The state `Arc` and the
/// epoch are read together up front: the whole request runs against one
/// state, and its cache entry is keyed to that state's epoch, so a swap
/// mid-request can neither corrupt this answer nor poison the cache.
fn answer(shared: &Shared, req: &ServeRequest, ctx: &mut ReqCtx) -> Result<String, HttpError> {
    let epoch = shared.epoch.load(Ordering::SeqCst);
    let state = Arc::clone(&shared.state.read().unwrap());
    if ctx.traced {
        ctx.generation = state.generation;
        ctx.epoch = epoch;
    }
    let key = format!("{epoch}#{}", req.cache_key());
    ctx.begin("cache_probe");
    if let Some(hit) = shared.cache.lock().unwrap().get(&key) {
        ctx.cache_hit = true;
        let body = hit.to_string();
        ctx.end();
        return Ok(body);
    }
    ctx.end();
    let to_http = |e: request::RequestError| HttpError {
        status: e.status,
        message: e.message,
    };
    if !ctx.traced {
        let body = request::execute(&state, req).map_err(to_http)?;
        shared
            .cache
            .lock()
            .unwrap()
            .insert(&key, Arc::from(body.as_str()));
        return Ok(body);
    }
    // Execute with the per-thread decode timer armed: evaluation wall
    // time splits into `postings_decode` (accumulated inside the
    // SearchIndex postings calls) and `rank_merge` (everything else in
    // the query algorithm), then `serialize` renders the body. The
    // spans are laid out back-to-back from `mark`, matching how
    // `execute_timed` measured them.
    let mark = ctx.tr.mark();
    crate::state::decode_timer_begin();
    let result = request::execute_timed(&state, req);
    let decode_ns = crate::state::decode_timer_take();
    let (body, timing) = result.map_err(to_http)?;
    let eval_us = timing.eval_ns / 1_000;
    let decode_us = (decode_ns / 1_000).min(eval_us);
    ctx.tr.push_span("postings_decode", mark, decode_us);
    ctx.tr
        .push_span("rank_merge", mark + decode_us, eval_us - decode_us);
    ctx.tr
        .push_span("serialize", mark + eval_us, timing.serialize_ns / 1_000);
    shared
        .cache
        .lock()
        .unwrap()
        .insert(&key, Arc::from(body.as_str()));
    Ok(body)
}

/// Build the `/metrics` document: request counters, cache counters, and
/// per-kind latency histograms from the trace registry.
fn metrics_json(shared: &Shared) -> String {
    let cache = shared.cache.lock().unwrap();
    let stats = cache.stats();
    let (len, capacity, resident) = (cache.len(), cache.capacity(), cache.resident_bytes());
    drop(cache);
    let (segments_open, generation, last_seal) = {
        let state = shared.state.read().unwrap();
        (
            state.segments_open(),
            state.generation,
            state.last_seal_unix,
        )
    };
    let mut s = format!(
        "{{\"uptime_s\":{},\"requests\":{{\"served\":{},\"errors\":{},\"rejected_429\":{},\
         \"in_flight\":{},\"max_in_flight\":{}}},\
         \"cache\":{{\"hits\":{},\"misses\":{},\"insertions\":{},\"evictions\":{},\
         \"hit_rate\":{},\"len\":{},\"capacity\":{},\"resident_bytes\":{resident}}},\
         \"ingest\":{{\"segments_open\":{segments_open},\"snapshot_generation\":{generation},\
         \"last_seal_unix\":{last_seal}}},\"histograms\":[",
        num(shared.started.elapsed().as_secs_f64()),
        shared.served.load(Ordering::Relaxed),
        shared.errors.load(Ordering::Relaxed),
        shared.rejected_429.load(Ordering::Relaxed),
        shared.in_flight.load(Ordering::Relaxed),
        shared.max_in_flight.load(Ordering::Relaxed),
        stats.hits,
        stats.misses,
        stats.insertions,
        stats.evictions,
        num(stats.hit_rate()),
        len,
        capacity
    );
    let registry = shared.registry.lock().unwrap();
    let mut summaries = registry.summaries();
    drop(registry);
    summaries.sort_by(|a, b| a.name.cmp(&b.name));
    for (i, sum) in summaries.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&sum.to_json());
    }
    s.push_str("]}\n");
    s
}

fn prom_counter(out: &mut String, name: &str, v: u64) {
    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
}

fn prom_gauge(out: &mut String, name: &str, v: f64) {
    out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", num(v)));
}

/// Build the Prometheus text exposition (`/metrics?format=prom`): the
/// serve counters and gauges, the per-kind latency summaries from the
/// trace registry, and — when serving an ingest directory — the live
/// WAL backlog gauges plus the sealer/compactor histograms accumulated
/// in the ingest metrics sidecar.
fn metrics_prom(shared: &Shared) -> String {
    let cache = shared.cache.lock().unwrap();
    let stats = cache.stats();
    let (len, capacity, resident) = (cache.len(), cache.capacity(), cache.resident_bytes());
    drop(cache);
    let state = Arc::clone(&shared.state.read().unwrap());
    let mut out = String::with_capacity(4096);
    prom_counter(
        &mut out,
        "serve_requests_total",
        shared.served.load(Ordering::Relaxed),
    );
    prom_counter(
        &mut out,
        "serve_errors_total",
        shared.errors.load(Ordering::Relaxed),
    );
    prom_counter(
        &mut out,
        "serve_rejected_total",
        shared.rejected_429.load(Ordering::Relaxed),
    );
    prom_gauge(
        &mut out,
        "serve_in_flight",
        shared.in_flight.load(Ordering::Relaxed) as f64,
    );
    prom_gauge(
        &mut out,
        "serve_in_flight_max",
        shared.max_in_flight.load(Ordering::Relaxed) as f64,
    );
    prom_counter(&mut out, "serve_cache_hits_total", stats.hits);
    prom_counter(&mut out, "serve_cache_misses_total", stats.misses);
    prom_counter(&mut out, "serve_cache_insertions_total", stats.insertions);
    prom_counter(&mut out, "serve_cache_evictions_total", stats.evictions);
    prom_gauge(&mut out, "serve_cache_entries", len as f64);
    prom_gauge(&mut out, "serve_cache_capacity", capacity as f64);
    prom_gauge(&mut out, "serve_cache_resident_bytes", resident as f64);
    prom_gauge(
        &mut out,
        "serve_uptime_seconds",
        shared.started.elapsed().as_secs_f64(),
    );
    prom_gauge(&mut out, "snapshot_generation", state.generation as f64);
    prom_gauge(&mut out, "segments_open", state.segments_open() as f64);
    prom_gauge(&mut out, "last_seal_unix", state.last_seal_unix as f64);
    prom_gauge(&mut out, "slow_log_retained", shared.slow.len() as f64);
    out.push_str(&shared.registry.lock().unwrap().to_prometheus());
    if let Some(dir) = &state.ingest_dir {
        // Always emit the full ingest family set: a fresh directory
        // (no sidecar yet, no backlog) scrapes the same names as a
        // busy one, so dashboards and validators can rely on them.
        let (bytes, records) = inspire_ingest::wal_backlog(dir).unwrap_or((0, 0));
        prom_gauge(&mut out, "wal_backlog_bytes", bytes as f64);
        prom_gauge(&mut out, "wal_unsealed_records", records as f64);
        let mut reg = inspire_ingest::load_ingest_metrics(dir).unwrap_or_default();
        for name in [
            "seal_latency_seconds",
            "time_to_visibility_seconds",
            "compaction_duration_seconds",
        ] {
            reg.ensure(name);
        }
        out.push_str(&reg.to_prometheus());
    }
    out
}
