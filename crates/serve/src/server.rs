//! The serving loop: accept thread, worker pool, bounded queue,
//! result cache, metrics, and graceful shutdown.
//!
//! One accept thread owns the listener and pushes connections into a
//! bounded queue; when the queue is full it answers `429` with
//! `Retry-After` on the accept thread itself so overload is rejected in
//! microseconds instead of queued into timeout. A fixed-width
//! [`spmd::IntraPool`] — the same pool the engine uses for intra-rank
//! data parallelism — runs the workers: each worker blocks on the queue,
//! speaks one request per connection, and consults the shared LRU cache
//! before executing. Shutdown flips one flag: the accept thread stops
//! accepting immediately, workers drain everything already queued, and
//! [`Server::shutdown`] joins all threads before returning the final
//! counters.

use crate::http::{self, HttpError};
use crate::lru::{CacheStats, LruCache};
use crate::request::{self, ServeRequest};
use crate::state::ServeState;
use inspire_trace::json::num;
use inspire_trace::Registry;
use spmd::IntraPool;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tunables. Defaults match the CLI defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads answering queries.
    pub workers: usize,
    /// Result-cache capacity in entries.
    pub cache_capacity: usize,
    /// Accepted-but-unserved connection bound; beyond it, 429.
    pub queue_depth: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 8,
            cache_capacity: 1024,
            queue_depth: 256,
            read_timeout: Duration::from_secs(5),
        }
    }
}

/// Final counters returned by [`Server::shutdown`].
#[derive(Debug, Clone, Copy)]
pub struct ServeSummary {
    pub served: u64,
    pub errors: u64,
    pub rejected_429: u64,
    pub max_in_flight: usize,
    pub cache: CacheStats,
}

/// State shared by the accept thread and every worker.
struct Shared {
    /// The serving state, swappable at a generation flip
    /// ([`Server::swap_state`]). Workers clone the `Arc` once per
    /// request, so in-flight requests finish on the state they started
    /// with — a flip never 5xxes anything.
    state: RwLock<Arc<ServeState>>,
    /// Bumped on every swap; prefixes cache keys so entries computed
    /// against an older state can neither be served nor inserted as
    /// current after a flip.
    epoch: AtomicU64,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    queue_depth: usize,
    read_timeout: Duration,
    shutdown: AtomicBool,
    cache: Mutex<LruCache>,
    registry: Mutex<Registry>,
    served: AtomicU64,
    errors: AtomicU64,
    rejected_429: AtomicU64,
    in_flight: AtomicUsize,
    max_in_flight: AtomicUsize,
    started: Instant,
}

/// A running server. Dropping the handle without calling
/// [`Server::shutdown`] leaks the threads; always shut down.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    pool_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, spin up the worker pool, and start accepting.
    pub fn start(state: Arc<ServeState>, cfg: &ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            state: RwLock::new(state),
            epoch: AtomicU64::new(0),
            queue: Mutex::new(VecDeque::with_capacity(cfg.queue_depth)),
            available: Condvar::new(),
            queue_depth: cfg.queue_depth.max(1),
            read_timeout: cfg.read_timeout,
            shutdown: AtomicBool::new(false),
            cache: Mutex::new(LruCache::new(cfg.cache_capacity)),
            registry: Mutex::new(Registry::new()),
            served: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            rejected_429: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            max_in_flight: AtomicUsize::new(0),
            started: Instant::now(),
        });

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || accept_loop(listener, &accept_shared))?;

        // The worker pool is the engine's own IntraPool: `workers` chunks
        // of one item each, so every chunk becomes one long-lived worker
        // loop on its own pool thread. `map_chunks` blocks until all
        // workers return, so it runs on a dedicated host thread.
        let pool_shared = Arc::clone(&shared);
        let pool_thread = std::thread::Builder::new()
            .name("serve-pool".to_string())
            .spawn(move || {
                let pool = IntraPool::new(workers);
                pool.map_chunks(workers, 1, |_range| worker_loop(&pool_shared));
            })?;

        Ok(Server {
            local_addr,
            shared,
            accept_thread: Some(accept_thread),
            pool_thread: Some(pool_thread),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Render the `/metrics` JSON right now.
    pub fn metrics_json(&self) -> String {
        metrics_json(&self.shared)
    }

    /// Atomically replace the serving state (an ingest-generation
    /// flip). In-flight requests keep the state they cloned; new
    /// requests see `next`. The cache epoch is bumped so pre-flip
    /// bodies can no longer be served or inserted.
    pub fn swap_state(&self, next: Arc<ServeState>) {
        *self.shared.state.write().unwrap() = next;
        self.shared.epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// Generation of the state currently being served.
    pub fn generation(&self) -> u64 {
        self.shared.state.read().unwrap().generation
    }

    /// Stop accepting, drain every queued and in-flight request, join
    /// all threads, and return the final counters.
    pub fn shutdown(mut self) -> ServeSummary {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.pool_thread.take() {
            let _ = t.join();
        }
        ServeSummary {
            served: self.shared.served.load(Ordering::Relaxed),
            errors: self.shared.errors.load(Ordering::Relaxed),
            rejected_429: self.shared.rejected_429.load(Ordering::Relaxed),
            max_in_flight: self.shared.max_in_flight.load(Ordering::Relaxed),
            cache: self.shared.cache.lock().unwrap().stats(),
        }
    }
}

/// Accept until shutdown. Nonblocking accept + short sleep so the
/// shutdown flag is observed within a millisecond; the backpressure
/// check runs here so a full queue answers 429 without ever touching
/// the worker pool.
fn accept_loop(listener: TcpListener, shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                let mut q = shared.queue.lock().unwrap();
                if q.len() < shared.queue_depth {
                    q.push_back(stream);
                    drop(q);
                    shared.available.notify_one();
                } else {
                    drop(q);
                    shared.rejected_429.fetch_add(1, Ordering::Relaxed);
                    let err = HttpError {
                        status: 429,
                        message: "server saturated, retry shortly".to_string(),
                    };
                    let _ = http::write_response(
                        &mut stream,
                        429,
                        "application/json",
                        &http::error_body(&err),
                        &["Retry-After: 1"],
                    );
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    // Dropping the listener here closes the socket, so the port is free
    // the moment shutdown begins.
}

/// One worker: pop connections until shutdown *and* the queue is empty,
/// so everything accepted before shutdown is still answered.
fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(s) = q.pop_front() {
                    break Some(s);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _timed_out) = shared
                    .available
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap();
                q = guard;
            }
        };
        let Some(mut stream) = stream else { return };
        let now_in_flight = shared.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        shared
            .max_in_flight
            .fetch_max(now_in_flight, Ordering::SeqCst);
        handle_connection(shared, &mut stream);
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Speak one request/response exchange on `stream`.
fn handle_connection(shared: &Shared, stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.read_timeout));
    let outcome = http::read_head(stream)
        .and_then(|head| http::parse_head(&head))
        .and_then(|req| respond(shared, &req.target));
    match outcome {
        Ok((body, content_type)) => {
            shared.served.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_response(stream, 200, content_type, &body, &[]);
        }
        Err(err) => {
            shared.errors.fetch_add(1, Ordering::Relaxed);
            let _ = http::write_response(
                stream,
                err.status,
                "application/json",
                &http::error_body(&err),
                &[],
            );
            if err.status == 413 {
                // The client sent more than we read. Closing now would
                // RST the connection and discard the response we just
                // wrote; drain (bounded) so close sends a clean FIN.
                drain(stream);
            }
        }
    }
}

/// Best-effort bounded read-and-discard of whatever the peer already
/// sent, so the subsequent close delivers the response.
fn drain(stream: &mut TcpStream) {
    use std::io::Read;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut scratch = [0u8; 4096];
    let mut total = 0usize;
    while total < 256 * 1024 {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => total += n,
        }
    }
}

/// Route one target to its response body. Query kinds go through the
/// cache; the latency histogram observes the full lookup-or-execute
/// path per kind either way.
fn respond(shared: &Shared, target: &str) -> Result<(String, &'static str), HttpError> {
    let (path, params) = request::split_target(target);
    match path {
        "/healthz" => return Ok(("ok\n".to_string(), "text/plain")),
        "/metrics" => return Ok((metrics_json(shared), "application/json")),
        _ => {}
    }
    let req = ServeRequest::parse(path, &params).map_err(|e| HttpError {
        status: e.status,
        message: e.message,
    })?;
    let t0 = Instant::now();
    let body = answer(shared, &req)?;
    let elapsed = t0.elapsed();
    shared
        .registry
        .lock()
        .unwrap()
        .observe(&format!("serve.{}", req.kind()), elapsed);
    Ok((body, "application/json"))
}

/// Cache-or-execute for one parsed request. The state `Arc` and the
/// epoch are read together up front: the whole request runs against one
/// state, and its cache entry is keyed to that state's epoch, so a swap
/// mid-request can neither corrupt this answer nor poison the cache.
fn answer(shared: &Shared, req: &ServeRequest) -> Result<String, HttpError> {
    let epoch = shared.epoch.load(Ordering::SeqCst);
    let state = Arc::clone(&shared.state.read().unwrap());
    let key = format!("{epoch}#{}", req.cache_key());
    if let Some(hit) = shared.cache.lock().unwrap().get(&key) {
        return Ok(hit.to_string());
    }
    let body = request::execute(&state, req).map_err(|e| HttpError {
        status: e.status,
        message: e.message,
    })?;
    shared
        .cache
        .lock()
        .unwrap()
        .insert(&key, Arc::from(body.as_str()));
    Ok(body)
}

/// Build the `/metrics` document: request counters, cache counters, and
/// per-kind latency histograms from the trace registry.
fn metrics_json(shared: &Shared) -> String {
    let cache = shared.cache.lock().unwrap();
    let stats = cache.stats();
    let (len, capacity) = (cache.len(), cache.capacity());
    drop(cache);
    let (segments_open, generation, last_seal) = {
        let state = shared.state.read().unwrap();
        (
            state.segments_open(),
            state.generation,
            state.last_seal_unix,
        )
    };
    let mut s = format!(
        "{{\"uptime_s\":{},\"requests\":{{\"served\":{},\"errors\":{},\"rejected_429\":{},\
         \"in_flight\":{},\"max_in_flight\":{}}},\
         \"cache\":{{\"hits\":{},\"misses\":{},\"insertions\":{},\"evictions\":{},\
         \"hit_rate\":{},\"len\":{},\"capacity\":{}}},\
         \"ingest\":{{\"segments_open\":{segments_open},\"snapshot_generation\":{generation},\
         \"last_seal_unix\":{last_seal}}},\"histograms\":[",
        num(shared.started.elapsed().as_secs_f64()),
        shared.served.load(Ordering::Relaxed),
        shared.errors.load(Ordering::Relaxed),
        shared.rejected_429.load(Ordering::Relaxed),
        shared.in_flight.load(Ordering::Relaxed),
        shared.max_in_flight.load(Ordering::Relaxed),
        stats.hits,
        stats.misses,
        stats.insertions,
        stats.evictions,
        num(stats.hit_rate()),
        len,
        capacity
    );
    let registry = shared.registry.lock().unwrap();
    let mut summaries = registry.summaries();
    drop(registry);
    summaries.sort_by(|a, b| a.name.cmp(&b.name));
    for (i, sum) in summaries.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&sum.to_json());
    }
    s.push_str("]}\n");
    s
}
