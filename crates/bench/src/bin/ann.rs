//! ANN similarity microbenchmark: IVF + quantized-signature search vs
//! the exhaustive `f64` oracle, swept over `nprobe`.
//!
//! The workload is the real pipeline end to end: generate a PubMed-style
//! corpus (2 MiB full, 256 KiB smoke), run the engine with `snapshot_out`
//! so the Final snapshot carries the ANN sections, then query the
//! snapshot the way `vaengine query --similar` does — rank centroids,
//! scan the top-`nprobe` clusters with the `u8` kernel, re-rank exactly.
//! Queries are document signatures sampled evenly across the corpus, so
//! the oracle's top-k is well defined and recall is exact.
//!
//! For every `nprobe` in {1, 2, 4, …, k} the sweep records recall@10
//! (from a top-10 fetch) and recall@100 (from a top-100 fetch) against
//! the oracle, mean candidates scanned, and speedup — oracle min-time
//! over IVF min-time for the *top-10* query batch, the user-facing
//! similar-documents shape, on both sides. The headline operating point
//! is the highest-speedup sweep entry with recall@10 ≥ 0.9 —
//! `nprobe = k` reproduces the oracle bit-for-bit, so that set is never
//! empty.
//!
//! Writes `results/BENCH_ann_<ts>.json` and the stable
//! `results/BENCH_ann_latest.json` pointer CI validates, and appends an
//! "ANN similarity" row to `results/scaling_history.md`.

use corpus::CorpusSpec;
use inspire_bench::{history, results_dir};
use inspire_core::ann::{self, AnnIndexView};
use inspire_core::pipeline::run_engine;
use inspire_core::{EngineConfig, EngineSnapshot};
use perfmodel::CostModel;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

struct SweepPoint {
    nprobe: usize,
    recall_at_10: f64,
    recall_at_100: f64,
    /// Mean quantized candidates scanned per query.
    candidates: f64,
    /// Oracle batch time / IVF batch time.
    speedup: f64,
    q_per_s: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (corpus_bytes, n_clusters, n_queries, iters) = if smoke {
        (384 * 1024u64, 12usize, 24usize, 3usize)
    } else {
        (2 * 1024 * 1024u64, 64usize, 64usize, 5usize)
    };

    // --- build: real pipeline, Final snapshot with ANN sections ---------
    let src = CorpusSpec::pubmed(corpus_bytes, 41).generate();
    let out = std::env::temp_dir().join(format!("va-ann-bench-{}.isnap", std::process::id()));
    let _ = std::fs::remove_file(&out);
    let cfg = EngineConfig {
        n_clusters,
        snapshot_out: Some(out.clone()),
        ..EngineConfig::default()
    };
    let t0 = Instant::now();
    run_engine(1, Arc::new(CostModel::pnnl_2007()), &src, &cfg);
    let build_s = t0.elapsed().as_secs_f64();
    let snap = EngineSnapshot::open(&out).expect("snapshot opens");
    assert!(snap.has_ann(), "Final snapshot must carry ANN sections");

    let meta = snap.meta();
    let (k, m) = (meta.k, meta.m_dims);
    let store = snap.store();
    let sigs = store.require("sigs").unwrap().as_f64s().unwrap();
    let codes = store.require("qsig").unwrap().as_records(m).unwrap();
    let sums = ann::code_sums(codes, m);
    let view = AnnIndexView {
        k,
        m,
        centroids: store.require("centroid").unwrap().as_f64s().unwrap(),
        ivfoff: store.require("ivfoff").unwrap().as_u64s().unwrap(),
        ivfdoc: store.require("ivfdoc").unwrap().as_u32s().unwrap(),
        codes,
        scale: store.require("qscale").unwrap().as_f64s().unwrap(),
        offset: store.require("qoff").unwrap().as_f64s().unwrap(),
        norm: store.require("signrm").unwrap().as_f64s().unwrap(),
        sums: &sums,
        exact: sigs,
    };
    let docs = view.docs();
    let quant_bytes: usize = ["qsig", "qscale", "qoff", "signrm", "ivfdoc", "ivfoff"]
        .iter()
        .map(|s| store.require(s).unwrap().bytes().len())
        .sum();
    let exact_bytes = store.require("sigs").unwrap().bytes().len();

    // --- queries: doc signatures sampled evenly, nulls skipped ----------
    let mut queries: Vec<&[f64]> = Vec::new();
    let mut d = 0usize;
    while queries.len() < n_queries && d < docs {
        let row = &sigs[d * m..(d + 1) * m];
        if ann::l2_norm(row) > 0.0 {
            queries.push(row);
        }
        d += (docs / n_queries).max(1);
    }
    assert!(!queries.is_empty(), "no non-null query signatures");

    // Recall is measured at both depths; *latency* is measured at the
    // user-facing top-10 similar-documents query on both sides, so the
    // speedup compares like for like (the oracle's scan cost barely
    // depends on `top`, the IVF side's re-rank pool does).
    let top = 10usize;
    let deep = 100usize;

    // --- oracle: exhaustive f64 scan, timed over the same batch ---------
    let oracle: Vec<Vec<inspire_core::query::Hit>> = queries
        .iter()
        .map(|q| ann::exhaustive(sigs, m, q, deep))
        .collect();
    let mut oracle_s = f64::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        for q in &queries {
            std::hint::black_box(ann::exhaustive(sigs, m, q, top));
        }
        oracle_s = oracle_s.min(t0.elapsed().as_secs_f64());
    }
    let truth10: Vec<HashSet<u32>> = oracle
        .iter()
        .map(|h| h.iter().take(top).map(|x| x.doc).collect())
        .collect();
    let truth100: Vec<HashSet<u32>> = oracle
        .iter()
        .map(|h| h.iter().map(|x| x.doc).collect())
        .collect();

    // --- sweep nprobe = 1, 2, 4, … , k ----------------------------------
    let mut probes: Vec<usize> = std::iter::successors(Some(1usize), |&p| Some(p * 2))
        .take_while(|&p| p < k)
        .collect();
    probes.push(k);
    let mut sweep = Vec::new();
    for &nprobe in &probes {
        let mut cand_total = 0usize;
        let (mut got10, mut got100) = (0usize, 0usize);
        let (mut want10, mut want100) = (0usize, 0usize);
        for (i, q) in queries.iter().enumerate() {
            let mut stats = ann::SearchStats::default();
            let hits = ann::search(&view, q, top, nprobe, &mut stats);
            cand_total += stats.candidates;
            got10 += hits.iter().filter(|h| truth10[i].contains(&h.doc)).count();
            want10 += truth10[i].len();
            let mut deep_stats = ann::SearchStats::default();
            let deep_hits = ann::search(&view, q, deep, nprobe, &mut deep_stats);
            got100 += deep_hits
                .iter()
                .filter(|h| truth100[i].contains(&h.doc))
                .count();
            want100 += truth100[i].len();
        }
        let mut ivf_s = f64::MAX;
        for _ in 0..iters {
            let t0 = Instant::now();
            for q in &queries {
                let mut stats = ann::SearchStats::default();
                std::hint::black_box(ann::search(&view, q, top, nprobe, &mut stats));
            }
            ivf_s = ivf_s.min(t0.elapsed().as_secs_f64());
        }
        sweep.push(SweepPoint {
            nprobe,
            recall_at_10: got10 as f64 / want10.max(1) as f64,
            recall_at_100: got100 as f64 / want100.max(1) as f64,
            candidates: cand_total as f64 / queries.len() as f64,
            speedup: if ivf_s > 0.0 { oracle_s / ivf_s } else { 0.0 },
            q_per_s: if ivf_s > 0.0 {
                queries.len() as f64 / ivf_s
            } else {
                0.0
            },
        });
    }

    // --- headline: best speedup among recall@10 ≥ 0.9 points ------------
    let operating = sweep
        .iter()
        .filter(|p| p.recall_at_10 >= 0.9)
        .max_by(|a, b| a.speedup.partial_cmp(&b.speedup).unwrap())
        .expect("nprobe = k always has recall 1.0");
    let compression = exact_bytes as f64 / quant_bytes.max(1) as f64;

    println!(
        "ann — {docs} docs, m={m}, k={k}, {} queries, top {top} (recall@100 at {deep}), built in {build_s:.1}s \
         ({quant_bytes} B quantized vs {exact_bytes} B exact, {compression:.2}x)",
        queries.len()
    );
    println!(
        "exhaustive oracle: {:.0} q/s",
        queries.len() as f64 / oracle_s
    );
    for p in &sweep {
        println!(
            "nprobe {:>3}: recall@10 {:.3}  recall@100 {:.3}  candidates {:>8.1}  \
             {:>8.0} q/s  {:.2}x",
            p.nprobe, p.recall_at_10, p.recall_at_100, p.candidates, p.q_per_s, p.speedup
        );
    }
    println!(
        "operating point: nprobe {} — recall@10 {:.3}, {:.2}x vs exhaustive",
        operating.nprobe, operating.recall_at_10, operating.speedup
    );

    let ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .expect("clock before 1970")
        .as_secs();
    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|p| {
            format!(
                "    {{\"nprobe\": {}, \"recall_at_10\": {:.4}, \"recall_at_100\": {:.4}, \
                 \"candidates\": {:.1}, \"q_per_s\": {:.0}, \"speedup\": {:.4}}}",
                p.nprobe, p.recall_at_10, p.recall_at_100, p.candidates, p.q_per_s, p.speedup
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"ann\",\n  \"smoke\": {smoke},\n  \
         \"corpus_bytes\": {corpus_bytes},\n  \"docs\": {docs},\n  \"m_dims\": {m},\n  \
         \"k_centroids\": {k},\n  \"queries\": {},\n  \"top\": {top},\n  \"deep\": {deep},\n  \
         \"quantized_bytes\": {quant_bytes},\n  \"exact_sig_bytes\": {exact_bytes},\n  \
         \"sig_compression_ratio\": {compression:.4},\n  \
         \"exhaustive_q_per_s\": {:.0},\n  \
         \"ann_nprobe\": {},\n  \"ann_recall_at_10\": {:.4},\n  \
         \"ann_recall_at_100\": {:.4},\n  \"ann_candidate_count\": {:.1},\n  \
         \"ann_speedup_vs_exhaustive\": {:.4},\n  \"sweep\": [\n{}\n  ]\n}}\n",
        queries.len(),
        queries.len() as f64 / oracle_s,
        operating.nprobe,
        operating.recall_at_10,
        operating.recall_at_100,
        operating.candidates,
        operating.speedup,
        sweep_json.join(",\n"),
    );
    let path = results_dir().join(format!("BENCH_ann_{ts}.json"));
    std::fs::write(&path, &json).expect("write BENCH json");
    let latest = results_dir().join("BENCH_ann_latest.json");
    std::fs::write(&latest, &json).expect("write BENCH latest pointer");
    println!("wrote {}", path.display());
    println!("wrote {}", latest.display());

    let row = format!(
        "| {} | {} | {} | {} | {} | {} | {:.3} | {:.3} | {:.1} | {:.2} |",
        utc_date(ts),
        smoke,
        docs,
        k,
        queries.len(),
        operating.nprobe,
        operating.recall_at_10,
        operating.recall_at_100,
        operating.candidates,
        operating.speedup,
    );
    let hist = results_dir().join("scaling_history.md");
    history::append_row(&hist, &ANN_TABLE, &row).expect("append ann history row");
    println!("appended {}", hist.display());

    let _ = std::fs::remove_file(&out);
}

/// The ANN-history table inside the shared history file.
const ANN_TABLE: history::HistoryTable<'static> = history::HistoryTable {
    section: Some("## ANN similarity"),
    header: "| date (utc) | smoke | docs | k | queries | nprobe | recall_at_10 | recall_at_100 | ann_candidates | ann_speedup |",
    marker: "| ann_speedup |",
};

/// Unix seconds → `YYYY-MM-DD` (civil-from-days, Hinnant's algorithm).
fn utc_date(ts: u64) -> String {
    let days = (ts / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}
