//! `scaling` — intra-rank pool scaling on the hot pipeline stages.
//!
//! Runs scan + inversion on a single rank at `threads_per_rank` 1..=W
//! and records, for each width:
//!
//! * the measured wall-clock (median and min over the iterations), and
//! * a **projected** speedup computed from the per-chunk wall-clock
//!   profile of the width-1 run: chunks are list-scheduled onto `w`
//!   virtual workers in index order (exactly the pool's queue
//!   discipline) and the projected time is the serial remainder plus
//!   the per-call makespans. The projection is host-independent, so it
//!   stays meaningful on single-core CI boxes where the measured curve
//!   is flat; both numbers land in the JSON so neither hides the other.
//!
//! ```text
//! scaling                 # full corpus, widths 1..=4, 5 iterations
//! scaling --smoke         # tiny fixture, 2 iterations (CI bench-smoke)
//! scaling --threads 8     # widen the sweep
//! scaling --iters 9       # more samples per width
//! ```
//!
//! The JSON also carries a `snapshot` section: one full-pipeline run
//! with `snapshot_out` set records the container's write wall-clock and
//! per-section byte counts, then the serving state (scan + inverted
//! index) is restored from the file on a single rank and timed, so the
//! report shows how much faster serving from a snapshot is than
//! re-running the pipeline on the same corpus.
//!
//! An `imbalance` section profiles one P=4 full-pipeline run on the
//! modeled cluster through the engine's run report: per-stage busy-time
//! imbalance across ranks, collective wait share, and the stage holding
//! the largest critical-path share (Figure 9's load-balance view).
//!
//! Output: `results/BENCH_intra_rank_scaling_<unix-ts>.json` plus an
//! append-only row in `results/scaling_history.md`.

use corpus::CorpusSpec;
use inspire_bench::{history, results_dir};
use inspire_core::index::invert;
use inspire_core::pipeline::run_engine;
use inspire_core::scan::scan;
use inspire_core::{EngineConfig, EngineSnapshot};
use inspire_serve::{execute, ServeRequest, ServeState};
use perfmodel::CostModel;
use spmd::{Component, Runtime};
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

struct WidthResult {
    threads: usize,
    wall_s_median: f64,
    wall_s_min: f64,
    measured_speedup: f64,
    projected_speedup: f64,
}

/// Per-stage communication counters from one scan+invert run, plus the
/// scan hot path's own accounting of batched vocabulary RPCs vs the
/// scalar message count the same run would have charged pre-batching.
struct CommReport {
    scan_msgs: u64,
    scan_bytes: u64,
    index_msgs: u64,
    index_bytes: u64,
    /// Index-stage messages that were destination-aggregated batches
    /// (cursor reservations, packed posting puts, term-stat accs).
    index_batched_msgs: u64,
    /// Scalar one-sided operations those batches folded away — what the
    /// pre-aggregation scatter would have charged for the same traffic.
    index_scalar_equiv: u64,
    vocab_rpc_msgs_batched: u64,
    vocab_rpc_scalar_equiv: u64,
}

impl CommReport {
    /// Scalar-equivalent vocabulary RPCs per charged batched message.
    fn batching_factor(&self) -> f64 {
        if self.vocab_rpc_msgs_batched > 0 {
            self.vocab_rpc_scalar_equiv as f64 / self.vocab_rpc_msgs_batched as f64
        } else {
            0.0
        }
    }

    /// Scalar-equivalent index-stage ops per charged batched message.
    fn index_batching_factor(&self) -> f64 {
        if self.index_batched_msgs > 0 {
            self.index_scalar_equiv as f64 / self.index_batched_msgs as f64
        } else {
            0.0
        }
    }
}

/// Snapshot timings from one full-pipeline run with `snapshot_out` set:
/// container write cost, per-section sizes, and the host wall-clock of
/// restoring the query-serving state back out of the file.
struct SnapshotBench {
    pipeline_wall_s: f64,
    write_s: f64,
    load_s: f64,
    /// Host wall-clock from `EngineSnapshot::open` through building the
    /// serving state to the first served query body.
    load_to_first_query_s: f64,
    total_bytes: u64,
    /// Bytes of the block-compressed index sections
    /// (postdir + postblk + postskp + dfv + tfv).
    index_compressed_bytes: u64,
    /// What the retired fixed-width layout would have spent on the same
    /// index (postoff + postdat + df + tf at their fixed element sizes).
    index_fixed_equiv_bytes: u64,
    sections: Vec<(String, u64)>,
}

impl SnapshotBench {
    /// How much faster loading the snapshot is than re-running the pipeline.
    fn load_speedup(&self) -> f64 {
        if self.load_s > 0.0 {
            self.pipeline_wall_s / self.load_s
        } else {
            0.0
        }
    }

    /// Fixed-width bytes per compressed byte for the index sections.
    fn index_compression_ratio(&self) -> f64 {
        if self.index_compressed_bytes > 0 {
            self.index_fixed_equiv_bytes as f64 / self.index_compressed_bytes as f64
        } else {
            0.0
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let max_threads = flag_value(&args, "--threads").unwrap_or(4).max(1);
    let iters = flag_value(&args, "--iters")
        .unwrap_or(if smoke { 2 } else { 5 })
        .max(1);

    let corpus_bytes = if smoke { 384 * 1024 } else { 2 * 1024 * 1024 };
    let src = CorpusSpec::pubmed(corpus_bytes, 2007).generate();
    let cfg = EngineConfig::default();

    // Profiled serial runs for the projection: keep the lowest-wall
    // sample (least scheduler noise) and project from that run alone, so
    // numerator and denominator come from the same execution.
    let mut best: Option<(u32, f64, Vec<Vec<f64>>)> = None;
    timed_run(&src, &cfg, 1); // warm caches before sampling
    for _ in 0..iters.max(3) {
        let sample = profiled_serial_run(&src, &cfg);
        if best.as_ref().is_none_or(|b| sample.1 < b.1) {
            best = Some(sample);
        }
    }
    let (docs, wall_prof, profile) = best.expect("at least one profiled run");
    let chunk_total: f64 = profile.iter().flatten().sum();

    let mut widths = Vec::new();
    let mut wall1_median = 0.0;
    for threads in 1..=max_threads {
        let mut samples: Vec<f64> = (0..iters).map(|_| timed_run(&src, &cfg, threads)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        let min = samples[0];
        if threads == 1 {
            wall1_median = median;
        }
        let serial_s = (wall_prof - chunk_total).max(0.0);
        let projected_s = serial_s + profile.iter().map(|g| makespan(g, threads)).sum::<f64>();
        widths.push(WidthResult {
            threads,
            wall_s_median: median,
            wall_s_min: min,
            measured_speedup: if median > 0.0 {
                wall1_median / median
            } else {
                0.0
            },
            projected_speedup: if projected_s > 0.0 {
                wall_prof / projected_s
            } else {
                0.0
            },
        });
    }

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let parallel_fraction = if wall_prof > 0.0 {
        (chunk_total / wall_prof).min(1.0)
    } else {
        0.0
    };

    let comm = comm_run(&src, &cfg);
    let snap_bench = snapshot_run(&src, &cfg);
    let imbalance = imbalance_run(&src, &cfg);
    // Compare against the newest prior BENCH JSON of the same shape, if
    // one exists, so the JSON records the measured wall-clock delta.
    let baseline_wall_s_1 = previous_wall1(smoke);
    let wall_clock_improvement = baseline_wall_s_1
        .filter(|_| wall1_median > 0.0)
        .map(|b| b / wall1_median);

    // Human-readable table.
    println!("intra-rank scaling — scan+invert, single rank, {docs} docs, {host_cpus} host cpu(s)");
    println!(
        "parallel fraction of the serial run: {:.1}%",
        parallel_fraction * 100.0
    );
    println!("threads  wall_s(median)  wall_s(min)  measured_x  projected_x");
    for w in &widths {
        println!(
            "{:>7}  {:>14.4}  {:>11.4}  {:>10.2}  {:>11.2}",
            w.threads, w.wall_s_median, w.wall_s_min, w.measured_speedup, w.projected_speedup
        );
    }
    println!(
        "comm: scan {} msgs / {} B, index {} msgs / {} B",
        comm.scan_msgs, comm.scan_bytes, comm.index_msgs, comm.index_bytes
    );
    println!(
        "vocab RPCs: {} batched messages for {} scalar-equivalent inserts ({:.1}x batching)",
        comm.vocab_rpc_msgs_batched,
        comm.vocab_rpc_scalar_equiv,
        comm.batching_factor()
    );
    println!(
        "index exchange: {} batched messages for {} scalar-equivalent ops ({:.1}x batching)",
        comm.index_batched_msgs,
        comm.index_scalar_equiv,
        comm.index_batching_factor()
    );
    if let (Some(b), Some(x)) = (baseline_wall_s_1, wall_clock_improvement) {
        println!("wall@1 vs previous run: {b:.4}s -> {wall1_median:.4}s ({x:.2}x)");
    }
    println!(
        "snapshot: {} B written in {:.4}s; serving load {:.4}s vs {:.4}s pipeline re-run ({:.1}x)",
        snap_bench.total_bytes,
        snap_bench.write_s,
        snap_bench.load_s,
        snap_bench.pipeline_wall_s,
        snap_bench.load_speedup()
    );
    println!(
        "index sections: {} B compressed vs {} B fixed-width equivalent ({:.2}x); \
         load-to-first-query {:.4}s",
        snap_bench.index_compressed_bytes,
        snap_bench.index_fixed_equiv_bytes,
        snap_bench.index_compression_ratio(),
        snap_bench.load_to_first_query_s
    );
    println!(
        "imbalance @P={IMBALANCE_PROCS}: max {:.1}% busy-time spread, critical-path stage {}",
        imbalance.max_imbalance_pct(),
        imbalance.critical_path_stage().unwrap_or("-")
    );

    let ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .expect("clock before 1970")
        .as_secs();
    let json = to_json(
        smoke,
        corpus_bytes,
        docs,
        host_cpus,
        iters,
        parallel_fraction,
        &profile,
        &widths,
        &comm,
        &snap_bench,
        &imbalance,
        baseline_wall_s_1,
        wall_clock_improvement,
    );
    let json_path = results_dir().join(format!("BENCH_intra_rank_scaling_{ts}.json"));
    std::fs::write(&json_path, &json).expect("write BENCH json");
    // Stable pointer so CI validation never has to guess which
    // timestamped file the run just produced.
    let latest = results_dir().join("BENCH_latest.json");
    std::fs::write(&latest, &json).expect("write BENCH latest pointer");
    println!("wrote {}", json_path.display());
    println!("wrote {}", latest.display());

    append_history(
        ts,
        smoke,
        corpus_bytes,
        docs,
        host_cpus,
        &widths,
        &comm,
        &imbalance,
    );
}

fn flag_value(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Wall-clock seconds of scan + invert at the given pool width.
fn timed_run(src: &corpus::SourceSet, cfg: &EngineConfig, threads: usize) -> f64 {
    let rt = Runtime::new(Arc::new(CostModel::zero())).with_threads_per_rank(threads);
    let res = rt.run(1, |ctx| {
        let t0 = Instant::now();
        let s = scan(ctx, src, cfg);
        let idx = invert(ctx, &s, cfg);
        let elapsed = t0.elapsed().as_secs_f64();
        assert!(idx.total_docs > 0);
        elapsed
    });
    res.results[0]
}

/// Serial run with chunk profiling on:
/// (total docs, wall seconds, per-call chunk times).
fn profiled_serial_run(src: &corpus::SourceSet, cfg: &EngineConfig) -> (u32, f64, Vec<Vec<f64>>) {
    let rt = Runtime::new(Arc::new(CostModel::zero()));
    let res = rt.run(1, |ctx| {
        ctx.pool().set_profiling(true);
        let t0 = Instant::now();
        let s = scan(ctx, src, cfg);
        let idx = invert(ctx, &s, cfg);
        let wall = t0.elapsed().as_secs_f64();
        ctx.pool().set_profiling(false);
        (idx.total_docs, wall, ctx.pool().take_profile())
    });
    res.results.into_iter().next().unwrap()
}

/// One serial scan+invert run with the stages bracketed in their
/// pipeline components, so the runtime's per-stage counters attribute
/// every charged operation (local or remote) to scan or index.
fn comm_run(src: &corpus::SourceSet, cfg: &EngineConfig) -> CommReport {
    let rt = Runtime::new(Arc::new(CostModel::zero()));
    let res = rt.run(1, |ctx| {
        let s = ctx.component(Component::Scan, || scan(ctx, src, cfg));
        let idx = ctx.component(Component::Index, || invert(ctx, &s, cfg));
        assert!(idx.total_docs > 0);
        let snap = ctx.stats.snapshot();
        CommReport {
            scan_msgs: snap.stage_msgs_for(Component::Scan),
            scan_bytes: snap.stage_bytes_for(Component::Scan),
            index_msgs: snap.stage_msgs_for(Component::Index),
            index_bytes: snap.stage_bytes_for(Component::Index),
            index_batched_msgs: snap.stage_batched_msgs_for(Component::Index),
            index_scalar_equiv: snap.stage_scalar_equiv_for(Component::Index),
            vocab_rpc_msgs_batched: s.vocab_rpc_msgs,
            vocab_rpc_scalar_equiv: s.vocab_rpc_scalar_equiv,
        }
    });
    res.results.into_iter().next().unwrap()
}

/// Full pipeline once with `snapshot_out` set, then a timed reload of
/// the serving state (scan + inverted index) from the written file.
fn snapshot_run(src: &corpus::SourceSet, cfg: &EngineConfig) -> SnapshotBench {
    let path = std::env::temp_dir().join(format!("va-bench-snapshot-{}.isnap", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let snap_cfg = EngineConfig {
        snapshot_out: Some(path.clone()),
        ..cfg.clone()
    };
    let t0 = Instant::now();
    let run = run_engine(1, Arc::new(CostModel::zero()), src, &snap_cfg);
    let pipeline_wall_s = t0.elapsed().as_secs_f64();
    let report = run
        .master()
        .snapshot_report
        .clone()
        .expect("snapshot_out run produces a report");

    let t0 = Instant::now();
    let snap = EngineSnapshot::open(&path).expect("snapshot reopens");
    let rt = Runtime::new(Arc::new(CostModel::zero()));
    rt.run(1, |ctx| {
        let s = snap.restore_scan(ctx).expect("scan restores");
        let idx = snap.restore_index(ctx).expect("index restores");
        assert!(idx.total_docs > 0 && s.vocab_size() > 0);
    });
    let load_s = t0.elapsed().as_secs_f64();

    // Cold-path serving: open → serving state → first query body. The
    // zero-copy read path makes this near-instant because postings stay
    // encoded in the mapped sections until a query touches them.
    let t0 = Instant::now();
    let qsnap = EngineSnapshot::open(&path).expect("snapshot reopens for serving");
    let state = ServeState::from_snapshot(qsnap).expect("serving state builds");
    let term = state.terms.get(state.terms.len() / 2).to_string();
    let body = execute(&state, &ServeRequest::Term { term, top: 5 }).expect("first query");
    assert!(!body.is_empty());
    let load_to_first_query_s = t0.elapsed().as_secs_f64();

    // Compression accounting against the retired fixed-width layout:
    // postoff (i64 per term + 1), postdat (u64 per posting), df (u32 per
    // term), tf (u64 per term).
    let dir = state
        .snapshot()
        .postings_dir()
        .expect("compressed index directory");
    let vocab = dir.vocab() as u64;
    let index_fixed_equiv_bytes =
        (vocab + 1) * 8 + dir.total_postings() * 8 + vocab * 4 + vocab * 8;
    let compressed_names = ["postdir", "postblk", "postskp", "dfv", "tfv"];
    let index_compressed_bytes = report
        .sections
        .iter()
        .filter(|(name, _)| compressed_names.contains(&name.as_str()))
        .map(|&(_, bytes)| bytes)
        .sum();
    let _ = std::fs::remove_file(&path);

    SnapshotBench {
        pipeline_wall_s,
        write_s: report.write_seconds,
        load_s,
        load_to_first_query_s,
        total_bytes: report.total_bytes,
        index_compressed_bytes,
        index_fixed_equiv_bytes,
        sections: report.sections,
    }
}

/// Processor count of the load-imbalance profile run.
const IMBALANCE_PROCS: usize = 4;

/// One full-pipeline run at P=4 on the modeled 2007 cluster, folded into
/// the engine's structured run report: per-stage busy-time imbalance,
/// collective wait share, and critical-path attribution.
fn imbalance_run(src: &corpus::SourceSet, cfg: &EngineConfig) -> inspire_trace::RunReport {
    let t0 = Instant::now();
    let run = run_engine(IMBALANCE_PROCS, Arc::new(CostModel::pnnl_2007()), src, cfg);
    inspire_core::build_run_report("scaling-imbalance", &run.run, t0.elapsed().as_secs_f64())
}

/// `wall_s_median` at width 1 from the newest prior BENCH JSON with the
/// same smoke flag, if any. Field-level scrape — no JSON parser offline.
fn previous_wall1(smoke: bool) -> Option<f64> {
    let mut newest: Option<(String, String)> = None;
    for entry in std::fs::read_dir(results_dir()).ok()?.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !name.starts_with("BENCH_intra_rank_scaling_") || !name.ends_with(".json") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(entry.path()) else {
            continue;
        };
        if !text.contains(&format!("\"smoke\": {smoke}")) {
            continue;
        }
        // Timestamped names sort chronologically for equal-length stems.
        if newest.as_ref().is_none_or(|(n, _)| name > *n) {
            newest = Some((name, text));
        }
    }
    let (_, text) = newest?;
    let at = text.find("\"wall_s_median\": ")?;
    let rest = &text[at + "\"wall_s_median\": ".len()..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Greedy list-schedule makespan: chunks in index order, each to the
/// earliest-free of `w` workers — the pool's queue discipline.
fn makespan(chunks: &[f64], w: usize) -> f64 {
    let mut workers = vec![0.0f64; w.max(1)];
    for &c in chunks {
        let i = workers
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        workers[i] += c;
    }
    workers.iter().cloned().fold(0.0, f64::max)
}

#[allow(clippy::too_many_arguments)]
fn to_json(
    smoke: bool,
    corpus_bytes: u64,
    docs: u32,
    host_cpus: usize,
    iters: usize,
    parallel_fraction: f64,
    profile: &[Vec<f64>],
    widths: &[WidthResult],
    comm: &CommReport,
    snap: &SnapshotBench,
    imbalance: &inspire_trace::RunReport,
    baseline_wall_s_1: Option<f64>,
    wall_clock_improvement: Option<f64>,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"intra_rank_scaling\",\n");
    s.push_str("  \"stages\": \"scan+invert\",\n");
    s.push_str("  \"corpus\": \"pubmed\",\n");
    s.push_str(&format!("  \"smoke\": {smoke},\n"));
    s.push_str(&format!("  \"corpus_bytes\": {corpus_bytes},\n"));
    s.push_str(&format!("  \"docs\": {docs},\n"));
    s.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    s.push_str(&format!("  \"iters\": {iters},\n"));
    s.push_str(&format!("  \"chunk_calls\": {},\n", profile.len()));
    s.push_str(&format!(
        "  \"chunks\": {},\n",
        profile.iter().map(|g| g.len()).sum::<usize>()
    ));
    s.push_str(&format!(
        "  \"parallel_fraction\": {parallel_fraction:.6},\n"
    ));
    s.push_str("  \"comm\": {\n");
    s.push_str(&format!("    \"scan_msgs\": {},\n", comm.scan_msgs));
    s.push_str(&format!("    \"scan_bytes\": {},\n", comm.scan_bytes));
    s.push_str(&format!("    \"index_msgs\": {},\n", comm.index_msgs));
    s.push_str(&format!("    \"index_bytes\": {},\n", comm.index_bytes));
    s.push_str(&format!(
        "    \"index_batched_msgs\": {},\n",
        comm.index_batched_msgs
    ));
    s.push_str(&format!(
        "    \"index_scalar_equiv\": {},\n",
        comm.index_scalar_equiv
    ));
    s.push_str(&format!(
        "    \"index_batching_factor\": {:.4},\n",
        comm.index_batching_factor()
    ));
    s.push_str(&format!(
        "    \"vocab_rpc_msgs_batched\": {},\n",
        comm.vocab_rpc_msgs_batched
    ));
    s.push_str(&format!(
        "    \"vocab_rpc_scalar_equiv\": {},\n",
        comm.vocab_rpc_scalar_equiv
    ));
    s.push_str(&format!(
        "    \"vocab_rpc_batching_factor\": {:.4},\n",
        comm.batching_factor()
    ));
    s.push_str(&format!(
        "    \"baseline_wall_s_1\": {},\n",
        baseline_wall_s_1.map_or("null".into(), |v| format!("{v:.6}"))
    ));
    s.push_str(&format!(
        "    \"wall_clock_improvement\": {}\n",
        wall_clock_improvement.map_or("null".into(), |v| format!("{v:.4}"))
    ));
    s.push_str("  },\n");
    s.push_str("  \"snapshot\": {\n");
    s.push_str(&format!(
        "    \"pipeline_wall_s\": {:.6},\n",
        snap.pipeline_wall_s
    ));
    s.push_str(&format!("    \"write_s\": {:.6},\n", snap.write_s));
    s.push_str(&format!("    \"load_s\": {:.6},\n", snap.load_s));
    s.push_str(&format!(
        "    \"load_to_first_query_s\": {:.6},\n",
        snap.load_to_first_query_s
    ));
    s.push_str(&format!(
        "    \"load_speedup_vs_pipeline\": {:.4},\n",
        snap.load_speedup()
    ));
    s.push_str(&format!("    \"total_bytes\": {},\n", snap.total_bytes));
    s.push_str(&format!(
        "    \"index_compressed_bytes\": {},\n",
        snap.index_compressed_bytes
    ));
    s.push_str(&format!(
        "    \"index_fixed_equiv_bytes\": {},\n",
        snap.index_fixed_equiv_bytes
    ));
    s.push_str(&format!(
        "    \"index_compression_ratio\": {:.4},\n",
        snap.index_compression_ratio()
    ));
    s.push_str("    \"sections\": {\n");
    for (i, (name, bytes)) in snap.sections.iter().enumerate() {
        s.push_str(&format!(
            "      \"{name}\": {bytes}{}\n",
            if i + 1 < snap.sections.len() { "," } else { "" }
        ));
    }
    s.push_str("    }\n");
    s.push_str("  },\n");
    s.push_str("  \"imbalance\": {\n");
    s.push_str(&format!("    \"procs\": {IMBALANCE_PROCS},\n"));
    s.push_str(&format!(
        "    \"virtual_time_s\": {:.6},\n",
        imbalance.virtual_time_s
    ));
    s.push_str(&format!(
        "    \"critical_path_s\": {:.6},\n",
        imbalance.critical_path_s()
    ));
    s.push_str(&format!(
        "    \"critical_path_stage\": \"{}\",\n",
        imbalance.critical_path_stage().unwrap_or("")
    ));
    s.push_str(&format!(
        "    \"max_imbalance_pct\": {:.4},\n",
        imbalance.max_imbalance_pct()
    ));
    s.push_str("    \"stages\": [\n");
    for (i, row) in imbalance.stages.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"name\": \"{}\", \"busy_max_s\": {:.6}, \"busy_min_s\": {:.6}, \
             \"wait_max_s\": {:.6}, \"imbalance_pct\": {:.4}, \"wait_share_pct\": {:.4}}}{}\n",
            row.name,
            row.busy_max_s,
            row.busy_min_s,
            row.wait_max_s,
            row.imbalance_pct(),
            row.wait_share_pct(),
            if i + 1 < imbalance.stages.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("    ]\n");
    s.push_str("  },\n");
    s.push_str("  \"widths\": [\n");
    for (i, w) in widths.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"threads\": {}, \"wall_s_median\": {:.6}, \"wall_s_min\": {:.6}, \
             \"measured_speedup\": {:.4}, \"projected_speedup\": {:.4}}}{}\n",
            w.threads,
            w.wall_s_median,
            w.wall_s_min,
            w.measured_speedup,
            w.projected_speedup,
            if i + 1 < widths.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// The pipeline-scaling history table, located by its comm-column
/// marker so rows land under this table even after other benches have
/// appended their own tables further down the file.
const COMM_TABLE: history::HistoryTable<'static> = history::HistoryTable {
    section: None,
    header: "| date (utc) | smoke | corpus_bytes | docs | host_cpus | wall_s@1 | wall_s@max | measured_x@max | projected_x@max | index_msgs | index_batch_x | imbal%@4 | crit_stage |",
    marker: "| index_msgs |",
};

/// Append one row to the append-only history table (created on first use).
#[allow(clippy::too_many_arguments)]
fn append_history(
    ts: u64,
    smoke: bool,
    corpus_bytes: u64,
    docs: u32,
    host_cpus: usize,
    widths: &[WidthResult],
    comm: &CommReport,
    imbalance: &inspire_trace::RunReport,
) {
    let path = results_dir().join("scaling_history.md");
    let first = widths.first().expect("at least width 1");
    let last = widths.last().expect("at least width 1");
    let row = format!(
        "| {} | {} | {} | {} | {} | {:.4} | {:.4} | {:.2} | {:.2} | {} | {:.1} | {:.1} | {} |",
        utc_date(ts),
        smoke,
        corpus_bytes,
        docs,
        host_cpus,
        first.wall_s_median,
        last.wall_s_median,
        last.measured_speedup,
        last.projected_speedup,
        comm.index_msgs,
        comm.index_batching_factor(),
        imbalance.max_imbalance_pct(),
        imbalance.critical_path_stage().unwrap_or("-"),
    );
    history::append_row(&path, &COMM_TABLE, &row).expect("append scaling history row");
    println!("appended {}", path.display());
}

/// Unix seconds → `YYYY-MM-DD` (civil-from-days, Hinnant's algorithm).
fn utc_date(ts: u64) -> String {
    let days = (ts / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}
