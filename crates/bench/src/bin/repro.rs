//! `repro` — regenerate every figure of the IPPS 2007 evaluation.
//!
//! ```text
//! repro fig5        # overall wall-clock, PubMed + TREC, 3 sizes × P sweep
//! repro fig6        # 6a PubMed speedups, 6b PubMed component percentages
//! repro fig7        # 7a TREC speedups,   7b TREC component percentages
//! repro fig8        # per-component speedups, both corpora
//! repro fig9        # dynamic load balancing effectiveness (indexing)
//! repro ablate-balancing   # dynamic vs static vs master-worker
//! repro ablate-chunk       # fixed-size chunking: chunk-size sweep
//! repro ablate-dims        # static vs adaptive signature dimensionality
//! repro ablate-network     # InfiniBand vs Gigabit Ethernet collectives
//! repro all         # everything above
//! ```
//!
//! Add `--quick` for a reduced sweep (smaller corpora, P ≤ 8).
//! CSV files land in `./results/`.

use inspire_bench::*;
use inspire_core::pipeline::run_engine;
use inspire_core::{Balancing, EngineConfig};
use perfmodel::CostModel;
use spmd::Component;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cmd = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .unwrap_or("all");

    // Figures 5-8 are views over one sweep; compute it once and share.
    let mut sweep_cache: Option<Vec<RunRecord>> = None;
    let mut records = |quick: bool| -> Vec<RunRecord> {
        sweep_cache.get_or_insert_with(|| full_sweep(quick)).clone()
    };

    match cmd {
        "fig5" => fig5(&records(quick)),
        "fig6" => fig6(&records(quick)),
        "fig7" => fig7(&records(quick)),
        "fig8" => fig8(&records(quick)),
        "fig9" => fig9(quick),
        "ablate-balancing" => ablate_balancing(quick),
        "ablate-chunk" => ablate_chunk(quick),
        "ablate-dims" => ablate_dims(quick),
        "ablate-network" => ablate_network(quick),
        "ablate-io" => ablate_io(quick),
        "ablate-clustering" => ablate_clustering(quick),
        "all" => {
            let r = records(quick);
            fig5(&r);
            fig6(&r);
            fig7(&r);
            fig8(&r);
            fig9(quick);
            ablate_balancing(quick);
            ablate_chunk(quick);
            ablate_dims(quick);
            ablate_network(quick);
            ablate_io(quick);
            ablate_clustering(quick);
        }
        other => {
            eprintln!("unknown figure: {other}");
            eprintln!("figures: fig5 fig6 fig7 fig8 fig9 ablate-balancing ablate-chunk ablate-dims ablate-network ablate-io ablate-clustering all");
            std::process::exit(2);
        }
    }
}

/// Sweep both corpora once; figures 5–8 are views of the same records.
fn full_sweep(quick: bool) -> Vec<RunRecord> {
    let cfg = bench_config();
    let procs = processor_counts(quick);
    let mut records = sweep(&pubmed_datasets(quick), &procs, &cfg);
    records.extend(sweep(&trec_datasets(quick), &procs, &cfg));
    records
}

fn save(name: &str, contents: &str) {
    let path = results_dir().join(name);
    std::fs::write(&path, contents).expect("write results file");
    println!("  → {}", path.display());
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

fn fig5(records: &[RunRecord]) {
    header("Figure 5 — overall wall clock (minutes) vs processors");
    save("fig5.csv", &to_csv(records));
    for corpus in ["PubMed", "TREC"] {
        println!("\n{corpus} — Overall Timings (wall clock, minutes):");
        let mut names: Vec<&str> = records
            .iter()
            .filter(|r| r.dataset.starts_with(corpus))
            .map(|r| r.dataset.as_str())
            .collect();
        names.dedup();
        print!("{:>8}", "procs");
        for n in &names {
            print!("{:>18}", n.trim_start_matches(corpus).trim());
        }
        println!();
        let procs: Vec<usize> = {
            let mut p: Vec<usize> = records
                .iter()
                .filter(|r| r.dataset.starts_with(corpus))
                .map(|r| r.procs)
                .collect();
            p.sort_unstable();
            p.dedup();
            p
        };
        for p in procs {
            print!("{p:>8}");
            for n in &names {
                match records.iter().find(|r| r.dataset == *n && r.procs == p) {
                    Some(r) => print!("{:>18.1}", r.minutes),
                    None => print!("{:>18}", "-"), // not run (paper §4.2)
                }
            }
            println!();
        }
    }
    println!("\nexpected shape: ~1/P scaling; PubMed 16.44 GB at P=4 is the");
    println!("memory-pressure anomaly (disproportionately slow, §4.2).");
}

fn print_speedup_table(records: &[RunRecord], corpus: &str) {
    let sp = speedups(records);
    let mut names: Vec<&str> = records
        .iter()
        .filter(|r| r.dataset.starts_with(corpus))
        .map(|r| r.dataset.as_str())
        .collect();
    names.dedup();
    print!("{:>8}", "procs");
    for n in &names {
        print!("{:>18}", n.trim_start_matches(corpus).trim());
    }
    println!();
    let mut procs: Vec<usize> = sp
        .iter()
        .filter(|(d, _, _)| d.starts_with(corpus))
        .map(|(_, p, _)| *p)
        .collect();
    procs.sort_unstable();
    procs.dedup();
    for p in procs {
        print!("{p:>8}");
        for n in &names {
            match sp.iter().find(|(d, pp, _)| d == n && *pp == p) {
                Some((_, _, s)) => print!("{s:>17.1}x"),
                None => print!("{:>18}", "-"),
            }
        }
        println!();
    }
}

fn print_component_table(records: &[RunRecord], dataset: &str) {
    let comps = [
        Component::Scan,
        Component::Index,
        Component::Topic,
        Component::Assoc,
        Component::DocVec,
        Component::ClusProj,
    ];
    print!("{:>8}", "procs");
    for c in comps {
        print!("{:>10}", c.label());
    }
    println!();
    for r in records.iter().filter(|r| r.dataset == dataset) {
        if r.procs < 4 {
            continue; // the paper's 6b/7b start at 4 processors
        }
        print!("{:>8}", r.procs);
        for c in comps {
            print!("{:>9.1}%", r.component_pct(c));
        }
        println!();
    }
}

fn fig6(records: &[RunRecord]) {
    header("Figure 6a — PubMed speedup; 6b — component time percentages (2.75 GB)");
    println!("\nPubMed — Overall Performance (speedup vs 1 proc):");
    print_speedup_table(records, "PubMed");
    println!("\nPubMed 2.75 GB — Time Percentage in Components:");
    print_component_table(records, "PubMed 2.75 GB");
    save("fig6.csv", &to_csv(records));
    println!("\nexpected shape: near-linear speedup; percentages stable in P");
    println!("except topic, whose share grows (Allreduce-bound).");
}

fn fig7(records: &[RunRecord]) {
    header("Figure 7a — TREC speedup; 7b — component time percentages (1 GB)");
    println!("\nTREC — Overall Performance (speedup vs 1 proc):");
    print_speedup_table(records, "TREC");
    println!("\nTREC 1.00 GB — Time Percentage in Components:");
    print_component_table(records, "TREC 1.00 GB");
    save("fig7.csv", &to_csv(records));
}

fn fig8(records: &[RunRecord]) {
    header("Figure 8 — per-component speedups");
    let comps = [
        (Component::Scan, "Scanning"),
        (Component::Index, "Indexing"),
        (Component::DocVec, "Signature Generation"),
        (Component::ClusProj, "Clustering & Projections"),
    ];
    for corpus in ["PubMed", "TREC"] {
        let mut names: Vec<&str> = records
            .iter()
            .filter(|r| r.dataset.starts_with(corpus))
            .map(|r| r.dataset.as_str())
            .collect();
        names.dedup();
        for (c, label) in comps {
            println!("\n{corpus} — {label} speedup:");
            print!("{:>8}", "procs");
            for n in &names {
                print!("{:>18}", n.trim_start_matches(corpus).trim());
            }
            println!();
            let mut procs: Vec<usize> = records
                .iter()
                .filter(|r| r.dataset.starts_with(corpus))
                .map(|r| r.procs)
                .collect();
            procs.sort_unstable();
            procs.dedup();
            for p in procs {
                print!("{p:>8}");
                for n in &names {
                    match component_speedup(records, n, c)
                        .into_iter()
                        .find(|(pp, _)| *pp == p)
                    {
                        Some((_, s)) => print!("{s:>17.1}x"),
                        None => print!("{:>18}", "-"),
                    }
                }
                println!();
            }
        }
    }
    save("fig8.csv", &to_csv(records));
    println!("\nexpected shape: every component near-linear; signature");
    println!("generation slightly below linear (its Allreduce share).");
}

fn fig9(quick: bool) {
    header("Figure 9 — dynamic load balancing effectiveness (indexing)");
    // The TREC corpus (heavy-tailed documents) is where static
    // partitioning hurts.
    let ds = trec_datasets(quick)[if quick { 0 } else { 1 }];
    let procs = if quick { 8 } else { 16 };
    println!("\ndataset: {}, {} processors", ds.name, procs);
    let mut csv = String::from("mode,rank,seconds\n");
    for mode in [Balancing::Static, Balancing::Dynamic] {
        let (times, imb) = load_balance_profile(&ds, procs, mode);
        println!("\n{mode:?} partitioning — per-rank indexing scatter time:");
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        for (r, t) in times.iter().enumerate() {
            let bar = if max > 0.0 {
                "#".repeat((t / max * 40.0).round() as usize)
            } else {
                String::new()
            };
            println!("  rank {r:>2}: {t:>8.2} s |{bar:<40}|");
            csv.push_str(&format!("{mode:?},{r},{t:.4}\n"));
        }
        println!("  imbalance (max/mean): {imb:.2}");
    }
    save("fig9.csv", &csv);
    println!("\nexpected shape: dynamic chunking flattens the profile;");
    println!("static owner-computes shows stragglers on the heavy tail.");
}

fn ablate_balancing(quick: bool) {
    header("Ablation — balancing strategy vs processor count");
    let ds = trec_datasets(quick)[0];
    let procs = processor_counts(quick);
    let mut csv = String::from("mode,procs,minutes\n");
    print!("{:>8}", "procs");
    for m in ["Static", "Dynamic", "MasterWorker"] {
        print!("{m:>14}");
    }
    println!("   (total pipeline minutes)");
    let sources = ds.generate();
    let model = ds.model(&sources);
    for &p in &procs {
        print!("{p:>8}");
        for mode in [
            Balancing::Static,
            Balancing::Dynamic,
            Balancing::MasterWorker,
        ] {
            let cfg = EngineConfig {
                balancing: mode,
                ..bench_config()
            };
            let run = run_engine(p, model.clone(), &sources, &cfg);
            let minutes = run.virtual_time / 60.0;
            print!("{minutes:>14.2}");
            csv.push_str(&format!("{mode:?},{p},{minutes:.4}\n"));
        }
        println!();
    }
    save("ablate_balancing.csv", &csv);
    println!("\nexpected: dynamic ≤ static everywhere; master-worker degrades");
    println!("as P grows (centralized queue, §3.3).");
}

fn ablate_chunk(quick: bool) {
    header("Ablation — fixed-size chunking: chunk size sweep");
    let ds = trec_datasets(quick)[0];
    let p = if quick { 8 } else { 16 };
    let sources = ds.generate();
    let model = ds.model(&sources);
    let mut csv = String::from("chunk_docs,index_seconds,imbalance\n");
    println!("\n{} at P={p}:", ds.name);
    println!(
        "{:>12} {:>16} {:>12}",
        "chunk_docs", "index seconds", "imbalance"
    );
    for chunk in [1usize, 2, 4, 16, 64, 256, 1024] {
        let cfg = EngineConfig {
            chunk_docs: chunk,
            ..bench_config()
        };
        let run = run_engine(p, model.clone(), &sources, &cfg);
        let idx_s = run.components.get(Component::Index);
        let times: Vec<f64> = run
            .master()
            .summary
            .load
            .iter()
            .map(|l| l.seconds)
            .collect();
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let imb = if mean > 0.0 { max / mean } else { 1.0 };
        println!("{chunk:>12} {idx_s:>16.2} {imb:>12.2}");
        csv.push_str(&format!("{chunk},{idx_s:.4},{imb:.4}\n"));
    }
    save("ablate_chunk.csv", &csv);
    println!("\nexpected: tiny chunks pay atomic overhead, huge chunks");
    println!("re-create imbalance; the sweet spot sits in between.");
}

fn ablate_dims(quick: bool) {
    header("Ablation — static vs adaptive signature dimensionality (§4.2)");
    let ds = pubmed_datasets(quick)[0];
    let sources = ds.generate();
    let model = ds.model(&sources);
    let p = if quick { 4 } else { 8 };
    let mut csv = String::from("mode,n_major,m_dims,null,weak,kmeans_iters,clusproj_minutes\n");
    println!(
        "\n{:>22} {:>8} {:>6} {:>6} {:>6} {:>8} {:>16}",
        "mode", "N", "M", "null", "weak", "km iters", "ClusProj minutes"
    );
    for (label, n_major, adaptive) in [
        ("static (too small)", 30usize, false),
        ("static (default)", 600, false),
        ("adaptive from small", 30, true),
    ] {
        let cfg = EngineConfig {
            n_major,
            adaptive_dims: adaptive,
            max_dim_expansions: 4,
            ..bench_config()
        };
        let run = run_engine(p, model.clone(), &sources, &cfg);
        let s = &run.master().summary;
        let cp_min = run.components.get(Component::ClusProj) / 60.0;
        println!(
            "{label:>22} {:>8} {:>6} {:>6} {:>6} {:>8} {cp_min:>16.2}",
            s.n_major, s.m_dims, s.sig_stats.null, s.sig_stats.weak, s.kmeans_iters
        );
        csv.push_str(&format!(
            "{label},{},{},{},{},{},{cp_min:.4}\n",
            s.n_major, s.m_dims, s.sig_stats.null, s.sig_stats.weak, s.kmeans_iters
        ));
    }
    save("ablate_dims.csv", &csv);
    println!("\nexpected: too-small dimensionality yields null/weak signatures");
    println!("and slow convergence; adaptive expansion recovers the default's");
    println!("quality (the paper's remedy).");
}

fn ablate_network(quick: bool) {
    header("Ablation — interconnect sensitivity (InfiniBand vs GigE)");
    let ds = pubmed_datasets(quick)[0];
    let sources = ds.generate();
    let p = if quick { 8 } else { 32 };
    let mut csv =
        String::from("network,procs,minutes,scan_s,index_s,topic_s,am_s,docvec_s,clusproj_s\n");
    println!("\n{} at P={p}:", ds.name);
    let mut rows = Vec::new();
    for (label, net) in [
        ("InfiniBand", perfmodel::Network::infiniband_sdr()),
        ("GigE", perfmodel::Network::gigabit_ethernet()),
    ] {
        let mut model = CostModel::pnnl_2007_scaled(ds.nominal_bytes(), sources.total_bytes());
        model.cluster.network = net;
        let run = run_engine(p, Arc::new(model), &sources, &bench_config());
        let minutes = run.virtual_time / 60.0;
        let rec = RunRecord::from_run(&ds, p, &run);
        println!(
            "  {label:>11}: {minutes:>7.2} min | scan {:>7.1}s index {:>7.1}s topic {:>6.2}s AM {:>6.2}s DocVec {:>6.2}s ClusProj {:>6.2}s",
            rec.component(Component::Scan),
            rec.component(Component::Index),
            rec.component(Component::Topic),
            rec.component(Component::Assoc),
            rec.component(Component::DocVec),
            rec.component(Component::ClusProj),
        );
        csv.push_str(&format!(
            "{label},{p},{minutes:.4},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2}\n",
            rec.component(Component::Scan),
            rec.component(Component::Index),
            rec.component(Component::Topic),
            rec.component(Component::Assoc),
            rec.component(Component::DocVec),
            rec.component(Component::ClusProj),
        ));
        rows.push(rec);
    }
    save("ablate_network.csv", &csv);
    let ratio = |c: Component| rows[1].component(c) / rows[0].component(c).max(1e-9);
    println!(
        "\ncommunication-bound stages inflate on the slower network (index {:.1}x,\n         topic {:.1}x, AM {:.1}x) while compute-bound stages barely move (DocVec {:.2}x).",
        ratio(Component::Index),
        ratio(Component::Topic),
        ratio(Component::Assoc),
        ratio(Component::DocVec)
    );
}

fn ablate_io(quick: bool) {
    header("Ablation — storage: shared server vs parallel filesystem (§4.2)");
    let ds = pubmed_datasets(quick)[1];
    let sources = ds.generate();
    let mut csv = String::from("storage,procs,scan_seconds\n");
    let procs = processor_counts(quick);
    println!("\n{} — scan component seconds:", ds.name);
    print!("{:>8}", "procs");
    for label in ["shared-NFS", "Lustre"] {
        print!("{label:>14}");
    }
    println!();
    for &p in &procs {
        print!("{p:>8}");
        for (label, storage) in [
            (
                "shared",
                perfmodel::StorageModel::SharedFixed {
                    aggregate_bps: 200e6,
                },
            ),
            (
                "lustre",
                perfmodel::StorageModel::Parallel {
                    per_node_bps: 300e6,
                    backplane_bps: 6e9,
                },
            ),
        ] {
            let mut model = CostModel::pnnl_2007_scaled(ds.nominal_bytes(), sources.total_bytes());
            model.cluster.storage = storage;
            let run = run_engine(p, Arc::new(model), &sources, &bench_config());
            let scan_s = run.components.get(Component::Scan);
            print!("{scan_s:>14.1}");
            csv.push_str(&format!("{label},{p},{scan_s:.3}\n"));
        }
        println!();
    }
    save("ablate_io.csv", &csv);
    println!("\nexpected: with a fixed shared server the scan component's");
    println!("speedup saturates (its I/O share is constant in P); the");
    println!("parallel filesystem restores near-linear scanning — the");
    println!("paper's Lustre remark.");
}

fn ablate_clustering(quick: bool) {
    use inspire_core::hierarchy::Linkage;
    use inspire_core::ClusterMethod;
    header("Ablation — clustering method (§3.5 alternatives)");
    let ds = pubmed_datasets(quick)[0];
    let sources = ds.generate();
    let model = ds.model(&sources);
    let p = if quick { 4 } else { 8 };
    let mut csv = String::from("method,clusters,clusproj_seconds,largest_cluster_frac\n");
    println!(
        "\n{} at P={p}:\n{:>28} {:>9} {:>14} {:>18}",
        ds.name, "method", "clusters", "ClusProj (s)", "largest cluster"
    );
    let methods: Vec<(&str, ClusterMethod)> = vec![
        ("k-means", ClusterMethod::KMeans),
        (
            "hier/single",
            ClusterMethod::Hierarchical {
                linkage: Linkage::Single,
                fine_factor: 4,
                adaptive: false,
            },
        ),
        (
            "hier/complete",
            ClusterMethod::Hierarchical {
                linkage: Linkage::Complete,
                fine_factor: 4,
                adaptive: false,
            },
        ),
        (
            "hier/average+adaptive",
            ClusterMethod::Hierarchical {
                linkage: Linkage::Average,
                fine_factor: 4,
                adaptive: true,
            },
        ),
    ];
    for (label, method) in methods {
        let cfg = EngineConfig {
            cluster_method: method,
            ..bench_config()
        };
        let run = run_engine(p, model.clone(), &sources, &cfg);
        let master = run.master();
        let clusters = master.cluster_sizes.iter().filter(|&&s| s > 0).count();
        let total: u64 = master.cluster_sizes.iter().sum();
        let largest = *master.cluster_sizes.iter().max().unwrap_or(&0) as f64 / total.max(1) as f64;
        let cp = run.components.get(Component::ClusProj);
        println!(
            "{label:>28} {clusters:>9} {cp:>14.1} {:>17.1}%",
            largest * 100.0
        );
        csv.push_str(&format!("{label},{clusters},{cp:.3},{largest:.4}\n"));
    }
    save("ablate_clustering.csv", &csv);
    println!("\nexpected: single link chains into few giant clusters; complete/");
    println!("average yield balanced themes; the adaptive cut picks its own k;");
    println!("hierarchical costs a little more ClusProj time (finer k-means).");
}
