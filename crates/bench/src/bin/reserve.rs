//! Cursor-reservation microbenchmark: batched `fetch_add_batch` versus
//! the scalar `read_inc` schedule it replaced in the FAST-INV scatter
//! pass.
//!
//! The workload mirrors the scatter's reservation pattern: each rank
//! holds a load of (cursor, delta) groups — one group per distinct term
//! in the load, deltas being the group's posting count — and reserves
//! all of them. The scalar schedule pays one remote atomic per group;
//! the batched schedule pays one message per destination rank. Both are
//! timed on the host clock and accounted in the runtime's comm
//! counters, and the batched slots are checked against the scalar
//! final state (windows tile exactly).
//!
//! Writes `results/BENCH_cursor_reservation_<ts>.json`; CI uploads it
//! as an artifact. `--smoke` shrinks the op count for quick runs.

use ga::GlobalArray;
use inspire_bench::results_dir;
use perfmodel::CostModel;
use spmd::Runtime;
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Distinct cursors (stands in for the global term space).
const CURSORS: usize = 4096;

struct Side {
    wall_s: f64,
    msgs: u64,
    remote_atomics: u64,
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// The (cursor, delta) groups rank `rank` reserves per load.
fn load_ops(rank: usize, load: usize, groups: usize) -> Vec<(usize, i64)> {
    let mut seed = 0x9E37_79B9 ^ ((rank as u64) << 32) ^ load as u64;
    (0..groups)
        .map(|_| {
            let c = (xorshift(&mut seed) % CURSORS as u64) as usize;
            let d = 1 + (xorshift(&mut seed) % 16) as i64;
            (c, d)
        })
        .collect()
}

fn run_side(procs: usize, loads: usize, groups: usize, batched: bool) -> (Side, Vec<i64>) {
    let rt = Runtime::new(Arc::new(CostModel::zero()));
    let res = rt.run(procs, |ctx| {
        let cursors = GlobalArray::<i64>::create(ctx, CURSORS);
        ctx.barrier();
        let t0 = Instant::now();
        for load in 0..loads {
            let ops = load_ops(ctx.rank(), load, groups);
            if batched {
                let slots = cursors.fetch_add_batch(ctx, &ops);
                assert_eq!(slots.len(), ops.len());
            } else {
                for &(c, d) in &ops {
                    cursors.read_inc(ctx, c, d);
                }
            }
        }
        let wall_s = t0.elapsed().as_secs_f64();
        ctx.barrier();
        let snap = ctx.stats.snapshot();
        (
            wall_s,
            snap.total_msgs(),
            snap.remote_atomics,
            cursors.get(ctx, 0..CURSORS),
        )
    });
    let finals = res.results[0].3.clone();
    let side = Side {
        wall_s: res.results.iter().map(|r| r.0).fold(0.0, f64::max),
        msgs: res.results.iter().map(|r| r.1).sum(),
        remote_atomics: res.results.iter().map(|r| r.2).sum(),
    };
    (side, finals)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (procs, loads, groups) = if smoke { (4, 16, 256) } else { (4, 64, 1024) };

    let (scalar, scalar_finals) = run_side(procs, loads, groups, false);
    let (batch, batch_finals) = run_side(procs, loads, groups, true);
    // Same workload either way: the cursors must land on identical
    // final values — the reserved windows tile the same totals.
    assert_eq!(scalar_finals, batch_finals, "reservation totals diverge");

    let msg_factor = if batch.msgs > 0 {
        scalar.msgs as f64 / batch.msgs as f64
    } else {
        0.0
    };
    let wall_factor = if batch.wall_s > 0.0 {
        scalar.wall_s / batch.wall_s
    } else {
        0.0
    };

    println!("cursor reservation — P={procs}, {loads} loads x {groups} groups, {CURSORS} cursors");
    println!(
        "scalar read_inc : {:>9} msgs ({} remote atomics)  wall {:.4}s",
        scalar.msgs, scalar.remote_atomics, scalar.wall_s
    );
    println!(
        "fetch_add_batch : {:>9} msgs ({} remote atomics)  wall {:.4}s",
        batch.msgs, batch.remote_atomics, batch.wall_s
    );
    println!("message reduction {msg_factor:.1}x, wall-clock {wall_factor:.2}x");

    let ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .expect("clock before 1970")
        .as_secs();
    let path = results_dir().join(format!("BENCH_cursor_reservation_{ts}.json"));
    let json = format!(
        "{{\n  \"bench\": \"cursor_reservation\",\n  \"smoke\": {smoke},\n  \
         \"procs\": {procs},\n  \"loads\": {loads},\n  \"groups_per_load\": {groups},\n  \
         \"cursors\": {CURSORS},\n  \
         \"scalar_msgs\": {},\n  \"scalar_remote_atomics\": {},\n  \"scalar_wall_s\": {:.6},\n  \
         \"batched_msgs\": {},\n  \"batched_remote_atomics\": {},\n  \"batched_wall_s\": {:.6},\n  \
         \"msg_reduction_factor\": {msg_factor:.4},\n  \"wall_clock_factor\": {wall_factor:.4}\n}}\n",
        scalar.msgs,
        scalar.remote_atomics,
        scalar.wall_s,
        batch.msgs,
        batch.remote_atomics,
        batch.wall_s,
    );
    std::fs::write(&path, json).expect("write BENCH json");
    println!("wrote {}", path.display());
}
