//! `ingest` — live-ingestion benchmark + correctness harness.
//!
//! Builds a base snapshot from half of a generated corpus, then appends
//! the rest batch by batch through the WAL → seal path, measuring:
//!
//! - `wal_append_docs_per_s` — durable append throughput (fsync
//!   included),
//! - `seal_latency_s` — mean time from WAL durability to the sealed
//!   segment being manifest-live,
//! - `time_to_visibility_s` — worst observed append-start → the new
//!   documents answering queries through a freshly loaded merged view
//!   (the CI gate: < 1 s on the smoke corpus),
//! - `write_amplification` — physical bytes on disk (WAL + segments +
//!   manifest) per logical input byte.
//!
//! Like `loadgen`, the benchmark doubles as a correctness harness:
//! every query body served by the merged (base + segments) view is
//! compared byte for byte against a from-scratch rebuild of the full
//! corpus, before and after compaction. `wrong_answers` must be zero or
//! the process exits 1.
//!
//! Output: `results/BENCH_ingest_<unix-ts>.json`, a stable copy at
//! `results/BENCH_ingest_latest.json`, and an append-only row in
//! `results/scaling_history.md`.

use corpus::{CorpusSpec, Source, SourceSet};
use inspire_bench::{history, results_dir};
use inspire_core::pipeline::run_engine;
use inspire_core::query::SearchIndex;
use inspire_core::EngineConfig;
use inspire_ingest::IngestDir;
use inspire_serve::{execute, load_live_state, ServeRequest, ServeState};
use perfmodel::CostModel;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let size = flag_num(&args, "--size").unwrap_or(if smoke { 256 * 1024 } else { 1024 * 1024 });
    let seed = flag_num(&args, "--seed").unwrap_or(7) as u64;

    let set = CorpusSpec::pubmed(size as u64, seed).generate();
    let half = set.sources.len() / 2;
    assert!(half >= 1, "corpus too small to split (--size {size})");
    let base_set = SourceSet {
        sources: set.sources[..half].to_vec(),
    };
    let batches: Vec<Source> = set.sources[half..].to_vec();
    let logical_bytes: u64 = batches.iter().map(|s| s.data.len() as u64).sum();

    let tmp = std::env::temp_dir().join(format!("va-bench-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).expect("create bench dir");
    let base_path = tmp.join("base.isnap");
    build_snapshot(&base_set, &base_path);
    eprintln!(
        "ingest bench: base {} docs, {} live batches ({} bytes)",
        count_docs(&base_path),
        batches.len(),
        logical_bytes
    );

    // Append every batch, measuring durability, seal, and visibility.
    let live_dir = tmp.join("live");
    let mut ing = IngestDir::create(&live_dir, Some(&base_path)).expect("create ingest dir");
    let mut docs_total: u64 = 0;
    let mut wal_s_total = 0.0_f64;
    let mut seal_s_total = 0.0_f64;
    let mut ttv_worst = 0.0_f64;
    let mut physical_segments: u64 = 0;
    for src in batches {
        let before = ing.total_docs();
        let t0 = Instant::now();
        let stats = ing.append(src).expect("append batch");
        // Visibility is measured the way a reader sees it: a fresh
        // merged view over the manifest must already serve the batch.
        let state = load_live_state(&live_dir).expect("merged view loads");
        assert!(
            state.total_docs() == before + stats.docs,
            "sealed batch not visible in the merged view"
        );
        let ttv = t0.elapsed().as_secs_f64();
        docs_total += stats.docs as u64;
        wal_s_total += stats.wal_s;
        seal_s_total += stats.seal_s;
        ttv_worst = ttv_worst.max(ttv);
        physical_segments += stats.segment_bytes;
    }
    let batches_n = ing.manifest().segments.len();
    let wal_docs_per_s = if wal_s_total > 0.0 {
        docs_total as f64 / wal_s_total
    } else {
        0.0
    };
    let seal_latency_s = seal_s_total / batches_n.max(1) as f64;
    let physical_bytes = file_len(&live_dir.join(inspire_ingest::WAL_FILE))
        + physical_segments
        + file_len(&live_dir.join(inspire_ingest::MANIFEST_FILE));
    let write_amplification = if logical_bytes > 0 {
        physical_bytes as f64 / logical_bytes as f64
    } else {
        0.0
    };

    // Correctness: the merged view must serve byte-identical bodies to
    // a from-scratch rebuild of the same logical corpus — before and
    // after compaction.
    let clean_path = tmp.join("clean.isnap");
    build_snapshot(&set, &clean_path);
    let clean = ServeState::load(&clean_path).expect("clean snapshot loads");
    let requests = build_requests(&clean);
    let live = load_live_state(&live_dir).expect("merged view loads");
    let mut wrong = compare(&clean, &live, &requests);

    let segments_before = live.segments_open();
    let report = ing.compact().expect("compaction");
    let segments_after = ing.manifest().segments.len();
    if let Some(r) = &report {
        eprintln!(
            "ingest bench: compacted {} segments into 1 ({} bytes)",
            r.segments_before, r.bytes_written
        );
    }
    let compacted = load_live_state(&live_dir).expect("compacted view loads");
    wrong += compare(&clean, &compacted, &requests);

    println!(
        "live ingestion — {docs_total} docs over {batches_n} batches, base {} docs",
        ing.manifest().base_docs
    );
    println!(
        "wal {wal_docs_per_s:.0} docs/s (fsync), seal {:.1} ms mean, visibility {:.1} ms worst",
        seal_latency_s * 1e3,
        ttv_worst * 1e3
    );
    println!(
        "write amplification {write_amplification:.2}x ({physical_bytes} physical / {logical_bytes} logical bytes)"
    );
    println!(
        "{segments_before} segments → {segments_after} after compaction, {wrong} wrong answers over {} queries x2",
        requests.len()
    );
    if wrong > 0 {
        eprintln!("ingest bench: FAILED — merged bodies diverged from the full rebuild");
    }

    let ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .expect("clock before 1970")
        .as_secs();
    let json = format!(
        "{{\n  \"bench\": \"ingest\",\n  \"smoke\": {smoke},\n  \"ingest\": {{\n    \
         \"docs\": {docs_total},\n    \"batches\": {batches_n},\n    \
         \"base_docs\": {},\n    \
         \"wal_append_docs_per_s\": {wal_docs_per_s:.2},\n    \
         \"seal_latency_s\": {seal_latency_s:.6},\n    \
         \"time_to_visibility_s\": {ttv_worst:.6},\n    \
         \"write_amplification\": {write_amplification:.4},\n    \
         \"logical_bytes\": {logical_bytes},\n    \"physical_bytes\": {physical_bytes},\n    \
         \"segments_before_compact\": {segments_before},\n    \
         \"segments_after_compact\": {segments_after},\n    \
         \"wrong_answers\": {wrong}\n  }}\n}}\n",
        ing.manifest().base_docs
    );
    let json_path = results_dir().join(format!("BENCH_ingest_{ts}.json"));
    std::fs::write(&json_path, &json).expect("write BENCH json");
    let latest = results_dir().join("BENCH_ingest_latest.json");
    std::fs::write(&latest, &json).expect("write BENCH latest pointer");
    println!("wrote {}", json_path.display());
    println!("wrote {}", latest.display());

    let row = format!(
        "| {} | {} | {} | {} | {:.0} | {:.4} | {:.4} | {:.2} | {} |",
        utc_date(ts),
        smoke,
        docs_total,
        batches_n,
        wal_docs_per_s,
        seal_latency_s,
        ttv_worst,
        write_amplification,
        wrong,
    );
    let path = results_dir().join("scaling_history.md");
    history::append_row(&path, &INGEST_TABLE, &row).expect("append ingest history row");
    println!("appended {}", path.display());

    let _ = std::fs::remove_dir_all(&tmp);
    if wrong > 0 {
        std::process::exit(1);
    }
}

/// The ingest-history table inside the shared history file.
const INGEST_TABLE: history::HistoryTable<'static> = history::HistoryTable {
    section: Some("## Live ingestion"),
    header:
        "| date (utc) | smoke | docs | batches | wal_docs_per_s | seal_s | ttv_s | write_amp | wrong |",
    marker: "| wal_docs_per_s |",
};

/// Full pipeline at P=1 with `snapshot_out` set.
fn build_snapshot(set: &SourceSet, out: &Path) {
    let cfg = EngineConfig {
        snapshot_out: Some(PathBuf::from(out)),
        ..EngineConfig::default()
    };
    let run = run_engine(1, Arc::new(CostModel::pnnl_2007()), set, &cfg);
    run.master()
        .snapshot_report
        .as_ref()
        .expect("snapshot written");
}

fn count_docs(snapshot: &Path) -> u32 {
    inspire_core::EngineSnapshot::open(snapshot)
        .expect("snapshot opens")
        .meta()
        .total_docs
}

fn file_len(path: &Path) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

/// Mixed-kind request list drawn from the rebuilt snapshot's vocabulary
/// (identical to the merged vocabulary when nothing diverged).
fn build_requests(state: &ServeState) -> Vec<ServeRequest> {
    let len = state.terms.len();
    let mut terms: Vec<String> = Vec::new();
    for k in 0..len * 2 {
        let t = state.terms.get((len / 7 + k) % len);
        if t.len() >= 2
            && t.chars().all(|c| c.is_ascii_alphanumeric())
            && !matches!(t, "and" | "or" | "not")
            && !terms.iter().any(|o| o == t)
        {
            terms.push(t.to_string());
            if terms.len() == 12 {
                break;
            }
        }
    }
    let mut out = Vec::new();
    for pair in terms.chunks(2) {
        out.push(ServeRequest::Term {
            term: pair[0].clone(),
            top: 10,
        });
        if pair.len() == 2 {
            let expr = inspire_core::query::Query::parse(&format!("{} AND {}", pair[0], pair[1]))
                .expect("query parses");
            out.push(ServeRequest::Boolean { expr, top: 10 });
            out.push(ServeRequest::Search {
                text: format!("{} {}", pair[0], pair[1]),
                top: 5,
            });
        }
    }
    out
}

/// Execute every request against both states; count body mismatches.
fn compare(clean: &ServeState, live: &ServeState, requests: &[ServeRequest]) -> u64 {
    let mut wrong = 0;
    for req in requests {
        let a = execute(clean, req).expect("clean body");
        let b = execute(live, req).expect("live body");
        if a != b {
            wrong += 1;
            eprintln!("mismatch on {req:?}:\n  clean: {a}\n  live:  {b}");
        }
    }
    wrong
}

fn flag_num(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Unix seconds → `YYYY-MM-DD` (civil-from-days, Hinnant's algorithm).
fn utc_date(ts: u64) -> String {
    let days = (ts / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}
