//! `loadgen` — concurrent load generator for the snapshot-serving tier.
//!
//! Drives many client threads of mixed-kind queries (`/term`, `/query`,
//! `/search`, `/cluster`, `/rect`) against a `vaengine serve` instance
//! and reports throughput, per-kind client-side latency percentiles,
//! and the server's own cache statistics. Every successful response is
//! checked byte-for-byte against the in-process [`execute`] oracle —
//! the exact code behind `vaengine query --json` — so the benchmark
//! doubles as a correctness harness: `wrong_answers` must be zero.
//!
//! ```text
//! loadgen --snapshot engine.isnap                     # in-process server
//! loadgen --snapshot engine.isnap --addr 127.0.0.1:7878   # external server
//! loadgen --snapshot engine.isnap --smoke             # CI serve-smoke sizing
//! loadgen --snapshot engine.isnap --clients 128 --requests 8192
//! loadgen --snapshot engine.isnap --flips 8           # hot-swap under load
//! ```
//!
//! `--flips N` (in-process only) hot-swaps the server's state N times
//! while the client herd is firing — the ingest generation-flip path —
//! and then **requires** zero errors and zero wrong answers: an
//! in-flight request must never 5xx or change bytes because the state
//! it started on was swapped out from under it.
//!
//! All client threads synchronize on a barrier **after** marking their
//! first request in flight and **before** sending it, so the reported
//! `max_in_flight` provably reaches the full client count — the CI
//! gate for "sustains ≥ N concurrent in-flight queries".
//!
//! In-process runs also measure the cost of request tracing: the same
//! herd first runs against a second server started with
//! `trace_requests: false`, and the reported (traced) run's throughput
//! is compared against that baseline as `trace_overhead_pct` in the
//! BENCH JSON. The untraced phase runs *first* so one-time warmup
//! (page cache, CPU ramp) lands on the baseline, not the measured run;
//! negative values simply mean the runs were within noise. External
//! `--addr` runs cannot control the server's config, so the field is
//! `null` there.
//!
//! Output: `results/BENCH_serving_<unix-ts>.json`, a stable copy at
//! `results/BENCH_serving_latest.json`, and an append-only row in
//! `results/scaling_history.md`.

use inspire_bench::{history, results_dir};
use inspire_serve::request::split_target;
use inspire_serve::{execute, http, ServeConfig, ServeRequest, ServeState, Server};
use inspire_trace::metrics::fmt_ns;
use inspire_trace::Registry;
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

const TIMEOUT: Duration = Duration::from_secs(30);

/// Shared counters across all client threads.
#[derive(Default)]
struct Counters {
    ok: AtomicU64,
    errors: AtomicU64,
    rejected_429: AtomicU64,
    wrong_answers: AtomicU64,
    in_flight: AtomicUsize,
    max_in_flight: AtomicUsize,
}

/// Server-side cache statistics scraped from `/metrics` at the end of
/// the run.
struct CacheScrape {
    hits: u64,
    misses: u64,
    evictions: u64,
    hit_rate: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let snapshot = flag_str(&args, "--snapshot").unwrap_or_else(|| {
        eprintln!("usage: loadgen --snapshot <file.isnap> [--addr HOST:PORT] [--clients N] [--requests N] [--smoke]");
        std::process::exit(2);
    });
    let clients = flag_num(&args, "--clients").unwrap_or(64).max(1);
    let total_requests = flag_num(&args, "--requests")
        .unwrap_or(if smoke { 1280 } else { 4096 })
        .max(clients);
    let flips = flag_num(&args, "--flips").unwrap_or(0);

    let t_load = Instant::now();
    let state = Arc::new(ServeState::load(Path::new(&snapshot)).unwrap_or_else(|e| {
        eprintln!("loadgen: cannot load snapshot {snapshot}: {e}");
        std::process::exit(2);
    }));
    eprintln!(
        "loadgen: snapshot {snapshot} loaded in {:.1} ms",
        t_load.elapsed().as_secs_f64() * 1e3
    );

    // Either drive an already-running server or host one in-process on
    // an ephemeral port. The in-process queue is sized so the client
    // herd never sees 429 unless it is explicitly testing backpressure.
    let external = flag_str(&args, "--addr");
    let (addr, server) = match &external {
        Some(a) => (resolve(a), None),
        None => {
            let cfg = ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                queue_depth: clients * 2,
                ..ServeConfig::default()
            };
            let server = Server::start(Arc::clone(&state), &cfg).unwrap_or_else(|e| {
                eprintln!("loadgen: cannot start in-process server: {e}");
                std::process::exit(2);
            });
            (server.local_addr(), Some(server))
        }
    };

    let health = http::get(addr, "/healthz", TIMEOUT).unwrap_or_else(|e| {
        eprintln!("loadgen: server at {addr} not answering /healthz: {e}");
        std::process::exit(2);
    });
    assert_eq!(health.status, 200, "unhealthy server at {addr}");

    // Mixed-kind target list with precomputed oracle bodies; every
    // served response must match its oracle byte for byte.
    let targets = build_targets(&state);
    let oracle: Vec<String> = targets
        .iter()
        .map(|t| {
            let (path, params) = split_target(t);
            let req = ServeRequest::parse(path, &params).expect("target parses");
            execute(&state, &req).expect("oracle executes")
        })
        .collect();
    eprintln!(
        "loadgen: {clients} clients, {total_requests} requests over {} targets against {addr}",
        targets.len()
    );

    if flips > 0 && server.is_none() {
        eprintln!("loadgen: --flips needs the in-process server (drop --addr)");
        std::process::exit(2);
    }
    // A second, independently loaded state for `--flips`: identical
    // answers, different allocation — swapping between the two is
    // exactly what an ingest generation flip does (minus new docs).
    let flip_state = if flips > 0 {
        Some(Arc::new(
            ServeState::load(Path::new(&snapshot)).unwrap_or_else(|e| {
                eprintln!("loadgen: cannot reload snapshot for --flips: {e}");
                std::process::exit(2);
            }),
        ))
    } else {
        None
    };

    // Tracing-overhead baseline (in-process only): the identical herd
    // first runs against a second server over the same state Arc with
    // request tracing disabled. Its throughput is the denominator of
    // `trace_overhead_pct`; the traced run below is the measured one.
    let qps_untraced = if server.is_some() {
        let cfg = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_depth: clients * 2,
            trace_requests: false,
            ..ServeConfig::default()
        };
        let baseline = Server::start(Arc::clone(&state), &cfg).unwrap_or_else(|e| {
            eprintln!("loadgen: cannot start untraced baseline server: {e}");
            std::process::exit(2);
        });
        let p = run_phase(
            baseline.local_addr(),
            &targets,
            &oracle,
            clients,
            total_requests,
            None,
        );
        baseline.shutdown();
        let qps = if p.wall_s > 0.0 {
            p.ok as f64 / p.wall_s
        } else {
            0.0
        };
        eprintln!(
            "loadgen: untraced baseline {qps:.0} req/s ({} ok, {:.3}s)",
            p.ok, p.wall_s
        );
        Some(qps)
    } else {
        None
    };

    let flipper = match (&server, &flip_state) {
        (Some(srv), Some(other)) => Some((srv, &state, other, flips)),
        _ => None,
    };
    let phase = run_phase(addr, &targets, &oracle, clients, total_requests, flipper);
    let wall_s = phase.wall_s;

    let mut merged = Registry::new();
    for r in &phase.registries {
        merged.merge(r);
    }

    let cache = scrape_cache(addr);
    if let Some(server) = server {
        let summary = server.shutdown();
        eprintln!(
            "loadgen: in-process server drained ({} served, {} errors)",
            summary.served, summary.errors
        );
    }

    let ok = phase.ok;
    let errors = phase.errors;
    let rejected = phase.rejected;
    let wrong = phase.wrong;
    let max_in_flight = phase.max_in_flight;
    let qps = if wall_s > 0.0 {
        ok as f64 / wall_s
    } else {
        0.0
    };
    let trace_overhead_pct = qps_untraced
        .filter(|&base| base > 0.0)
        .map(|base| (base - qps) / base * 100.0);

    println!(
        "serving load — {clients} clients, {total_requests} requests, {flips} state flips, {addr}"
    );
    println!(
        "{ok} ok, {errors} errors, {rejected} rejected (429), {wrong} wrong answers, max {max_in_flight} in flight"
    );
    println!("wall {wall_s:.3}s → {qps:.0} req/s");
    match (qps_untraced, trace_overhead_pct) {
        (Some(base), Some(pct)) => {
            println!("tracing overhead: {pct:+.2}% vs untraced baseline ({base:.0} req/s)")
        }
        _ => println!("tracing overhead: n/a (external server)"),
    }
    println!(
        "cache: {} hits / {} misses ({:.1}% hit rate), {} evictions",
        cache.hits,
        cache.misses,
        cache.hit_rate * 100.0,
        cache.evictions
    );
    println!("kind       count      p50      p95      p99");
    for h in merged.summaries() {
        println!(
            "{:<9} {:>6}  {:>7} {:>8} {:>8}",
            h.name,
            h.count,
            fmt_ns(h.p50_ns as f64),
            fmt_ns(h.p95_ns as f64),
            fmt_ns(h.p99_ns as f64)
        );
    }

    if wrong > 0 {
        eprintln!("loadgen: FAILED — {wrong} served bodies diverged from the single-shot oracle");
    }
    let flip_failure = flips > 0 && errors > 0;
    if flip_failure {
        eprintln!("loadgen: FAILED — {errors} requests errored while the state was hot-swapped");
    }

    let ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .expect("clock before 1970")
        .as_secs();
    let json = to_json(
        smoke,
        &snapshot,
        clients,
        total_requests,
        flips,
        wall_s,
        qps,
        qps_untraced,
        trace_overhead_pct,
        ok,
        errors,
        rejected,
        wrong,
        max_in_flight,
        &cache,
        &merged,
    );
    let json_path = results_dir().join(format!("BENCH_serving_{ts}.json"));
    std::fs::write(&json_path, &json).expect("write BENCH json");
    let latest = results_dir().join("BENCH_serving_latest.json");
    std::fs::write(&latest, &json).expect("write BENCH latest pointer");
    println!("wrote {}", json_path.display());
    println!("wrote {}", latest.display());

    append_history(
        ts,
        smoke,
        clients,
        total_requests,
        qps,
        wrong,
        rejected,
        &cache,
        &merged,
    );

    if wrong > 0 || flip_failure {
        std::process::exit(1);
    }
}

/// Everything one herd run produces: wall time, the shared counters'
/// final values, and one latency registry per client thread.
struct PhaseResult {
    wall_s: f64,
    ok: u64,
    errors: u64,
    rejected: u64,
    wrong: u64,
    max_in_flight: usize,
    registries: Vec<Registry>,
}

/// Run one full client herd against `addr`: every client marks its
/// first request in flight, the barrier drops, and `total_requests`
/// spread across `clients` threads fire. `flipper` (main phase only)
/// hot-swaps the in-process server's state while the herd runs.
fn run_phase(
    addr: SocketAddr,
    targets: &[String],
    oracle: &[String],
    clients: usize,
    total_requests: usize,
    flipper: Option<(&Server, &Arc<ServeState>, &Arc<ServeState>, usize)>,
) -> PhaseResult {
    let counters = Counters::default();
    let barrier = Barrier::new(clients);
    let per_client = total_requests / clients;
    let remainder = total_requests % clients;

    let t0 = Instant::now();
    let registries: Vec<Registry> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let n = per_client + usize::from(c < remainder);
                let counters = &counters;
                let barrier = &barrier;
                s.spawn(move || client_loop(c, n, addr, targets, oracle, counters, barrier))
            })
            .collect();
        if let Some((srv, a, b, flips)) = flipper {
            s.spawn(move || {
                for i in 0..flips {
                    std::thread::sleep(Duration::from_millis(20));
                    let next = if i % 2 == 0 { b } else { a };
                    srv.swap_state(Arc::clone(next));
                }
            });
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    PhaseResult {
        wall_s: t0.elapsed().as_secs_f64(),
        ok: counters.ok.load(Ordering::Relaxed),
        errors: counters.errors.load(Ordering::Relaxed),
        rejected: counters.rejected_429.load(Ordering::Relaxed),
        wrong: counters.wrong_answers.load(Ordering::Relaxed),
        max_in_flight: counters.max_in_flight.load(Ordering::Relaxed),
        registries,
    }
}

/// One client thread: `n` requests round-robining the target list from
/// a per-client offset (so the herd mixes hits and misses), recording
/// client-observed latency per kind and verifying each 200 body.
fn client_loop(
    client: usize,
    n: usize,
    addr: SocketAddr,
    targets: &[String],
    oracle: &[String],
    counters: &Counters,
    barrier: &Barrier,
) -> Registry {
    let mut reg = Registry::new();
    for i in 0..n {
        let idx = (client + i) % targets.len();
        let target = &targets[idx];
        let kind = kind_of(target);

        let cur = counters.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
        counters.max_in_flight.fetch_max(cur, Ordering::SeqCst);
        if i == 0 {
            // Every client has its first request marked in flight
            // before any of them sends: max_in_flight ≥ clients by
            // construction, and the herd genuinely fires at once.
            barrier.wait();
        }
        let t0 = Instant::now();
        let resp = http::get(addr, target, TIMEOUT);
        let elapsed = t0.elapsed();
        counters.in_flight.fetch_sub(1, Ordering::SeqCst);

        match resp {
            Ok(r) if r.status == 200 => {
                reg.observe(kind, elapsed);
                counters.ok.fetch_add(1, Ordering::Relaxed);
                if r.body != oracle[idx] {
                    counters.wrong_answers.fetch_add(1, Ordering::Relaxed);
                }
            }
            Ok(r) if r.status == 429 => {
                counters.rejected_429.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(10));
            }
            Ok(_) | Err(_) => {
                counters.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    reg
}

/// A mixed-kind target list drawn from the snapshot vocabulary: single
/// terms, boolean combinations, ranked text queries, plus cluster and
/// rectangle selections when the snapshot carries a layout.
fn build_targets(state: &ServeState) -> Vec<String> {
    let terms = pick_terms(state, 12);
    let mut out = Vec::new();
    for pair in terms.chunks(2) {
        out.push(format!("/term?t={}", pair[0]));
        if pair.len() == 2 {
            out.push(format!("/query?q={}+AND+{}", pair[0], pair[1]));
            out.push(format!("/query?q={}+OR+{}&top=7", pair[1], pair[0]));
            out.push(format!("/search?q={}+{}&top=5", pair[0], pair[1]));
        }
    }
    if state.has_layout() {
        out.push("/cluster?c=0&top=8".to_string());
        out.push("/rect?x0=-1e6&y0=-1e6&x1=1e6&y1=1e6&top=20".to_string());
    }
    out
}

/// Plain-word vocabulary terms, skipping boolean operators.
fn pick_terms(state: &ServeState, n: usize) -> Vec<String> {
    let len = state.terms.len();
    assert!(len > 0, "empty snapshot vocabulary");
    let mut out = Vec::new();
    for k in 0..len * 2 {
        let t = state.terms.get((len / 7 + k) % len);
        if t.len() >= 2
            && t.chars().all(|c| c.is_ascii_alphanumeric())
            && !matches!(t, "and" | "or" | "not")
            && !out.iter().any(|o| o == t)
        {
            out.push(t.to_string());
            if out.len() == n {
                return out;
            }
        }
    }
    assert!(
        out.len() >= 2,
        "not enough usable terms in vocabulary ({len} total)"
    );
    out
}

/// Latency-histogram name for a target: `client_<kind>_seconds`, the
/// client-side mirror of the server's `serve_<kind>_seconds` family.
fn kind_of(target: &str) -> &'static str {
    match target.split(['?', '/']).nth(1) {
        Some("term") => "client_term_seconds",
        Some("query") => "client_query_seconds",
        Some("search") => "client_search_seconds",
        Some("cluster") => "client_cluster_seconds",
        Some("rect") => "client_rect_seconds",
        _ => "client_other_seconds",
    }
}

/// Pull the server's cache counters out of `/metrics`.
fn scrape_cache(addr: SocketAddr) -> CacheScrape {
    let empty = CacheScrape {
        hits: 0,
        misses: 0,
        evictions: 0,
        hit_rate: 0.0,
    };
    let Ok(resp) = http::get(addr, "/metrics", TIMEOUT) else {
        return empty;
    };
    let Ok(v) = inspire_trace::json::parse(&resp.body) else {
        return empty;
    };
    let Some(cache) = v.get("cache") else {
        return empty;
    };
    let f = |k: &str| cache.get(k).and_then(|x| x.as_f64()).unwrap_or(0.0);
    CacheScrape {
        hits: f("hits") as u64,
        misses: f("misses") as u64,
        evictions: f("evictions") as u64,
        hit_rate: f("hit_rate"),
    }
}

fn resolve(addr: &str) -> SocketAddr {
    addr.to_socket_addrs()
        .ok()
        .and_then(|mut a| a.next())
        .unwrap_or_else(|| {
            eprintln!("loadgen: cannot resolve --addr {addr}");
            std::process::exit(2);
        })
}

fn flag_str(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_num(args: &[String], flag: &str) -> Option<usize> {
    flag_str(args, flag).and_then(|v| v.parse().ok())
}

#[allow(clippy::too_many_arguments)]
fn to_json(
    smoke: bool,
    snapshot: &str,
    clients: usize,
    requests: usize,
    flips: usize,
    wall_s: f64,
    qps: f64,
    qps_untraced: Option<f64>,
    trace_overhead_pct: Option<f64>,
    ok: u64,
    errors: u64,
    rejected: u64,
    wrong: u64,
    max_in_flight: usize,
    cache: &CacheScrape,
    merged: &Registry,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"serving_load\",\n");
    s.push_str(&format!("  \"smoke\": {smoke},\n"));
    s.push_str(&format!(
        "  \"snapshot\": \"{}\",\n",
        inspire_trace::json::escape(snapshot)
    ));
    s.push_str("  \"serving\": {\n");
    s.push_str(&format!("    \"clients\": {clients},\n"));
    s.push_str(&format!("    \"requests\": {requests},\n"));
    s.push_str(&format!("    \"flips\": {flips},\n"));
    s.push_str(&format!("    \"wall_s\": {wall_s:.6},\n"));
    s.push_str(&format!("    \"qps\": {qps:.2},\n"));
    match qps_untraced {
        Some(v) => s.push_str(&format!("    \"qps_untraced\": {v:.2},\n")),
        None => s.push_str("    \"qps_untraced\": null,\n"),
    }
    match trace_overhead_pct {
        Some(v) => s.push_str(&format!("    \"trace_overhead_pct\": {v:.3},\n")),
        None => s.push_str("    \"trace_overhead_pct\": null,\n"),
    }
    s.push_str(&format!("    \"ok\": {ok},\n"));
    s.push_str(&format!("    \"errors\": {errors},\n"));
    s.push_str(&format!("    \"rejected_429\": {rejected},\n"));
    s.push_str(&format!("    \"wrong_answers\": {wrong},\n"));
    s.push_str(&format!("    \"max_in_flight\": {max_in_flight},\n"));
    s.push_str("    \"cache\": {\n");
    s.push_str(&format!("      \"hits\": {},\n", cache.hits));
    s.push_str(&format!("      \"misses\": {},\n", cache.misses));
    s.push_str(&format!("      \"evictions\": {},\n", cache.evictions));
    s.push_str(&format!("      \"hit_rate\": {:.6}\n", cache.hit_rate));
    s.push_str("    },\n");
    s.push_str("    \"kinds\": [\n");
    let sums = merged.summaries();
    for (i, h) in sums.iter().enumerate() {
        s.push_str(&format!(
            "      {}{}\n",
            h.to_json(),
            if i + 1 < sums.len() { "," } else { "" }
        ));
    }
    s.push_str("    ]\n");
    s.push_str("  }\n}\n");
    s
}

/// The serving-history table: its marker column locates it inside the
/// shared history file so rows land under this table even when other
/// benches have appended tables after it.
const SERVING_TABLE: history::HistoryTable<'static> = history::HistoryTable {
    section: Some("## Serving load"),
    header: "| date (utc) | smoke | clients | requests | serve_qps | search_p95 | cache_hit% | wrong | rejected |",
    marker: "| serve_qps |",
};

#[allow(clippy::too_many_arguments)]
fn append_history(
    ts: u64,
    smoke: bool,
    clients: usize,
    requests: usize,
    qps: f64,
    wrong: u64,
    rejected: u64,
    cache: &CacheScrape,
    merged: &Registry,
) {
    let path = results_dir().join("scaling_history.md");
    let search_p95 = merged
        .summaries()
        .iter()
        .find(|h| h.name == "client_search_seconds")
        .map(|h| fmt_ns(h.p95_ns as f64))
        .unwrap_or_else(|| "-".to_string());
    let row = format!(
        "| {} | {} | {} | {} | {:.0} | {} | {:.1} | {} | {} |",
        utc_date(ts),
        smoke,
        clients,
        requests,
        qps,
        search_p95,
        cache.hit_rate * 100.0,
        wrong,
        rejected,
    );
    history::append_row(&path, &SERVING_TABLE, &row).expect("append serving history row");
    println!("appended {}", path.display());
}

/// Unix seconds → `YYYY-MM-DD` (civil-from-days, Hinnant's algorithm).
fn utc_date(ts: u64) -> String {
    let days = (ts / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}
