//! Postings-codec microbenchmark: encode/seek/decode throughput of the
//! block-compressed posting-list codec, scalar vs unrolled decode.
//!
//! The workload is a synthetic term space with a heavy-tailed list
//! length distribution (most terms rare, a few huge — the shape an
//! inverted index actually has), doc gaps drawn small-biased the way
//! delta streams look after sorting, and values carrying the engine's
//! `freq << 3 | field` packing. Four measurements:
//!
//! - **encode**: `encode_list` over every list, MB/s of encoded output
//!   and postings/s in;
//! - **decode**: `decode_list` over every list (the unrolled 8-wide
//!   varint fast path), MB/s of encoded input and postings/s out;
//! - **scalar reference**: the same byte stream through
//!   `read_varints_u32_scalar` — the encoded buffer is one contiguous
//!   sequence of u32 varints, so the scalar/unrolled comparison runs
//!   over identical bytes;
//! - **seek**: `decode_from` with a probe into the upper half of each
//!   multi-block list, versus what a full decode would have paid.
//!
//! Writes `results/BENCH_postings_codec_<ts>.json` and the stable
//! `results/BENCH_postings_latest.json` pointer CI validates. `--smoke`
//! shrinks the term space for quick runs.

use inspire_bench::results_dir;
use inspire_store::codec::{
    decode_from, decode_list, encode_list, read_varints_u32, read_varints_u32_scalar, BLOCK_LEN,
};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Heavy-tailed list length: mostly short lists, occasionally huge —
/// buckets chosen so multi-block lists (>128) carry most postings.
fn list_len(seed: &mut u64) -> usize {
    match xorshift(seed) % 16 {
        0..=7 => 1 + (xorshift(seed) % 8) as usize,
        8..=11 => 8 + (xorshift(seed) % 56) as usize,
        12..=13 => 64 + (xorshift(seed) % 192) as usize,
        14 => 256 + (xorshift(seed) % 1792) as usize,
        _ => 2048 + (xorshift(seed) % 6144) as usize,
    }
}

/// One sorted posting list: small-biased doc gaps, `freq<<3|field` values.
fn make_list(seed: &mut u64, len: usize) -> Vec<(u32, u32)> {
    let mut doc = (xorshift(seed) % 1024) as u32;
    (0..len)
        .map(|_| {
            doc += 1 + (xorshift(seed) % 64) as u32;
            let freq = 1 + (xorshift(seed) % 50) as u32;
            let field = (xorshift(seed) % 3) as u32;
            (doc, (freq << 3) | field)
        })
        .collect()
}

struct Encoded {
    bytes: Vec<u8>,
    skips: Vec<u64>,
    n: usize,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (lists_n, iters) = if smoke { (512, 3) } else { (4096, 5) };

    let mut seed = 0x2007_1EE7_u64;
    let lists: Vec<Vec<(u32, u32)>> = (0..lists_n)
        .map(|_| {
            let len = list_len(&mut seed);
            make_list(&mut seed, len)
        })
        .collect();
    let postings: usize = lists.iter().map(|l| l.len()).sum();
    let fixed_width_bytes = postings as u64 * 8; // legacy postdat: one u64 per posting

    // --- encode ---------------------------------------------------------
    let mut encode_s = f64::MAX;
    let mut encoded: Vec<Encoded> = Vec::new();
    for _ in 0..iters {
        let t0 = Instant::now();
        let out: Vec<Encoded> = lists
            .iter()
            .map(|pairs| {
                let mut bytes = Vec::new();
                let mut skips = Vec::new();
                encode_list(pairs, &mut bytes, &mut skips);
                Encoded {
                    bytes,
                    skips,
                    n: pairs.len(),
                }
            })
            .collect();
        encode_s = encode_s.min(t0.elapsed().as_secs_f64());
        encoded = out;
    }
    let encoded_bytes: u64 = encoded.iter().map(|e| e.bytes.len() as u64).sum();
    let compression_ratio = fixed_width_bytes as f64 / encoded_bytes.max(1) as f64;

    // --- decode (unrolled fast path via decode_list) --------------------
    let mut decode_s = f64::MAX;
    let mut scratch: Vec<(u32, u32)> = Vec::new();
    let mut checksum = 0u64;
    for _ in 0..iters {
        let mut sum = 0u64;
        let t0 = Instant::now();
        for e in &encoded {
            scratch.clear();
            decode_list(&e.bytes, e.n, &mut scratch).expect("decode");
            sum += scratch.last().map(|&(k, _)| k as u64).unwrap_or(0);
        }
        decode_s = decode_s.min(t0.elapsed().as_secs_f64());
        checksum = sum;
    }

    // --- scalar vs unrolled over identical bytes ------------------------
    // encode_list emits nothing but u32 varints (gaps then values per
    // block), so each list's buffer is a contiguous stream of 2n varints
    // both readers can consume whole.
    let mut scalar_s = f64::MAX;
    let mut unrolled_s = f64::MAX;
    let mut vals: Vec<u32> = Vec::new();
    for _ in 0..iters {
        let t0 = Instant::now();
        for e in &encoded {
            let mut at = 0usize;
            vals.clear();
            read_varints_u32_scalar(&e.bytes, &mut at, 2 * e.n, &mut vals).expect("scalar");
            assert_eq!(at, e.bytes.len());
        }
        scalar_s = scalar_s.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        for e in &encoded {
            let mut at = 0usize;
            vals.clear();
            read_varints_u32(&e.bytes, &mut at, 2 * e.n, &mut vals).expect("unrolled");
            assert_eq!(at, e.bytes.len());
        }
        unrolled_s = unrolled_s.min(t0.elapsed().as_secs_f64());
    }

    // --- seek: decode_from into the upper half of multi-block lists -----
    let multi: Vec<&Encoded> = encoded.iter().filter(|e| e.n > BLOCK_LEN).collect();
    let mut seek_s = f64::MAX;
    let mut seeked_postings = 0u64;
    for _ in 0..iters {
        let mut out_count = 0u64;
        let t0 = Instant::now();
        for e in &multi {
            // Probe at the last key of the middle block: the seek skips
            // roughly half the list's blocks.
            let mid = e.skips[e.skips.len() / 2];
            let probe = inspire_store::codec::skip_last_key(mid);
            scratch.clear();
            decode_from(&e.bytes, e.n, &e.skips, probe, &mut scratch).expect("decode_from");
            out_count += scratch.len() as u64;
        }
        seek_s = seek_s.min(t0.elapsed().as_secs_f64());
        seeked_postings = out_count;
    }

    let mb = |bytes: u64, s: f64| {
        if s > 0.0 {
            bytes as f64 / s / 1e6
        } else {
            0.0
        }
    };
    let per_s = |count: u64, s: f64| if s > 0.0 { count as f64 / s } else { 0.0 };
    let encode_mb_s = mb(encoded_bytes, encode_s);
    let encode_postings_s = per_s(postings as u64, encode_s);
    let decode_mb_s = mb(encoded_bytes, decode_s);
    let decode_postings_s = per_s(postings as u64, decode_s);
    let scalar_mb_s = mb(encoded_bytes, scalar_s);
    let unrolled_mb_s = mb(encoded_bytes, unrolled_s);
    let unrolled_speedup = if unrolled_s > 0.0 {
        scalar_s / unrolled_s
    } else {
        0.0
    };
    let multi_bytes: u64 = multi.iter().map(|e| e.bytes.len() as u64).sum();
    let seek_postings_s = per_s(seeked_postings, seek_s);

    println!(
        "postings codec — {lists_n} lists, {postings} postings, {encoded_bytes} B encoded \
         ({compression_ratio:.2}x vs {fixed_width_bytes} B fixed-width), checksum {checksum:x}"
    );
    println!("encode  : {encode_mb_s:>8.1} MB/s  {encode_postings_s:>12.0} postings/s");
    println!("decode  : {decode_mb_s:>8.1} MB/s  {decode_postings_s:>12.0} postings/s (unrolled)");
    println!("varints : scalar {scalar_mb_s:.1} MB/s, unrolled {unrolled_mb_s:.1} MB/s ({unrolled_speedup:.2}x)");
    println!(
        "seek    : {} multi-block lists ({multi_bytes} B), {seeked_postings} postings decoded, \
         {seek_postings_s:.0} postings/s",
        multi.len()
    );

    let ts = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .expect("clock before 1970")
        .as_secs();
    let json = format!(
        "{{\n  \"bench\": \"postings_codec\",\n  \"smoke\": {smoke},\n  \
         \"lists\": {lists_n},\n  \"postings\": {postings},\n  \
         \"encoded_bytes\": {encoded_bytes},\n  \"fixed_width_bytes\": {fixed_width_bytes},\n  \
         \"compression_ratio\": {compression_ratio:.4},\n  \
         \"encode_mb_s\": {encode_mb_s:.2},\n  \"encode_postings_s\": {encode_postings_s:.0},\n  \
         \"decode_mb_s\": {decode_mb_s:.2},\n  \"decode_postings_s\": {decode_postings_s:.0},\n  \
         \"scalar_varint_mb_s\": {scalar_mb_s:.2},\n  \"unrolled_varint_mb_s\": {unrolled_mb_s:.2},\n  \
         \"unrolled_speedup\": {unrolled_speedup:.4},\n  \
         \"seek_lists\": {},\n  \"seek_postings\": {seeked_postings},\n  \
         \"seek_postings_s\": {seek_postings_s:.0}\n}}\n",
        multi.len(),
    );
    let path = results_dir().join(format!("BENCH_postings_codec_{ts}.json"));
    std::fs::write(&path, &json).expect("write BENCH json");
    let latest = results_dir().join("BENCH_postings_latest.json");
    std::fs::write(&latest, &json).expect("write BENCH latest pointer");
    println!("wrote {}", path.display());
    println!("wrote {}", latest.display());
}
