//! Append-only markdown history tables with structural guarantees.
//!
//! `results/scaling_history.md` accumulates rows from several benchmark
//! binaries, each owning one table with its own column set. The naive
//! "append at EOF" discipline breaks as soon as a second table exists:
//! a pipeline row written after the serving table was added lands under
//! the serving header with the wrong column count. This module fixes
//! both failure modes:
//!
//! - rows are inserted at the end of *their own* table, located by a
//!   marker column unique to that table's header, regardless of where
//!   the table sits in the file;
//! - the row's column count is checked against the header before
//!   anything is written, so a schema drift in a bench binary fails
//!   loudly instead of corrupting the history.

use std::io;
use std::path::Path;

/// Title line every history file starts with.
const FILE_TITLE: &str = "# Intra-rank scaling history (append-only)";

/// One table within the shared history file.
pub struct HistoryTable<'a> {
    /// Optional `## …` section heading emitted when the table is first
    /// created (older tables predate section headings and have none).
    pub section: Option<&'a str>,
    /// Full header row, `| col | col | … |`.
    pub header: &'a str,
    /// A column cell unique to this table's header (e.g. `| serve_qps |`),
    /// used to find the table in the file.
    pub marker: &'a str,
}

/// Number of cells in a markdown table row.
fn columns(row: &str) -> usize {
    let trimmed = row.trim().trim_start_matches('|').trim_end_matches('|');
    trimmed.split('|').count()
}

/// The `|---|---|…|` separator matching a header's column count.
fn separator(cols: usize) -> String {
    let mut s = String::from("|");
    for _ in 0..cols {
        s.push_str("---|");
    }
    s
}

/// Append `row` to its table inside the history file at `path`,
/// creating the file and/or the table on first use.
///
/// Returns an error if the row's column count does not match the
/// table's header — nothing is written in that case.
pub fn append_row(path: &Path, table: &HistoryTable<'_>, row: &str) -> io::Result<()> {
    let header_cols = columns(table.header);
    let row_cols = columns(row);
    if row_cols != header_cols {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "history row has {row_cols} columns but table header {:?} has {header_cols}",
                table.marker
            ),
        ));
    }
    debug_assert!(
        table.header.contains(table.marker),
        "marker must appear in the table's own header"
    );

    let mut text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => format!("{FILE_TITLE}\n"),
        Err(e) => return Err(e),
    };
    if !text.ends_with('\n') {
        text.push('\n');
    }

    let lines: Vec<&str> = text.lines().collect();
    let header_idx = lines.iter().position(|l| l.contains(table.marker));

    let new_text = match header_idx {
        Some(h) => {
            // Walk past the separator and existing rows to the table end.
            let mut end = h + 1;
            while end < lines.len() && lines[end].trim_start().starts_with('|') {
                end += 1;
            }
            let mut out: Vec<String> = lines[..end].iter().map(|l| l.to_string()).collect();
            out.push(row.trim_end().to_string());
            out.extend(lines[end..].iter().map(|l| l.to_string()));
            out.join("\n") + "\n"
        }
        None => {
            let mut out = text;
            out.push('\n');
            if let Some(section) = table.section {
                out.push_str(section);
                out.push_str("\n\n");
            }
            out.push_str(table.header.trim_end());
            out.push('\n');
            out.push_str(&separator(header_cols));
            out.push('\n');
            out.push_str(row.trim_end());
            out.push('\n');
            out
        }
    };

    // Single atomic-ish rewrite: the file is small (tens of rows) and
    // only ever touched by one bench process at a time.
    let tmp = path.with_extension("md.tmp");
    std::fs::write(&tmp, new_text)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("va-history-{}-{name}.md", std::process::id()))
    }

    const COMM: HistoryTable<'static> = HistoryTable {
        section: None,
        header: "| date | smoke | index_msgs | crit |",
        marker: "| index_msgs |",
    };
    const SERVING: HistoryTable<'static> = HistoryTable {
        section: Some("## Serving load"),
        header: "| date | serve_qps | wrong |",
        marker: "| serve_qps |",
    };

    #[test]
    fn creates_file_and_table_on_first_use() {
        let p = tmp("create");
        let _ = std::fs::remove_file(&p);
        append_row(&p, &COMM, "| d1 | true | 7 | scan |").unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        assert!(text.starts_with(FILE_TITLE));
        assert!(text.contains("| index_msgs |"));
        assert!(text.ends_with("| d1 | true | 7 | scan |\n"));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn rows_land_under_their_own_table() {
        let p = tmp("own-table");
        let _ = std::fs::remove_file(&p);
        append_row(&p, &COMM, "| d1 | true | 7 | scan |").unwrap();
        append_row(&p, &SERVING, "| d1 | 7000 | 0 |").unwrap();
        // A later comm row must NOT land at EOF under the serving table.
        append_row(&p, &COMM, "| d2 | false | 9 | index |").unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        let comm_at = text.find("| d2 | false |").unwrap();
        let serving_header_at = text.find("| serve_qps |").unwrap();
        assert!(
            comm_at < serving_header_at,
            "comm row appended under the wrong table:\n{text}"
        );
        // And a later serving row still extends the serving table.
        append_row(&p, &SERVING, "| d2 | 8000 | 0 |").unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        assert!(text.trim_end().ends_with("| d2 | 8000 | 0 |"));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn column_mismatch_is_rejected_before_writing() {
        let p = tmp("colcheck");
        let _ = std::fs::remove_file(&p);
        append_row(&p, &COMM, "| d1 | true | 7 | scan |").unwrap();
        let before = std::fs::read_to_string(&p).unwrap();
        let err = append_row(&p, &COMM, "| d2 | true | 7 |").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert_eq!(std::fs::read_to_string(&p).unwrap(), before);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn section_heading_written_once() {
        let p = tmp("section");
        let _ = std::fs::remove_file(&p);
        append_row(&p, &SERVING, "| d1 | 7000 | 0 |").unwrap();
        append_row(&p, &SERVING, "| d2 | 7100 | 1 |").unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        assert_eq!(text.matches("## Serving load").count(), 1);
        let _ = std::fs::remove_file(&p);
    }
}
