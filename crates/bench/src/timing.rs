//! Minimal wall-clock bench harness for the `harness = false` benches.
//!
//! Replaces criterion (unavailable offline) with the part we use:
//! warmup, repeated timed iterations, and a median/min/mean report line.
//! Results print as aligned text; no statistics beyond spread are
//! attempted — these benches exist to catch order-of-magnitude
//! regressions, not microarchitectural drift.

use std::time::{Duration, Instant};

/// Time `f` over `iters` samples (after one warmup call) and print one
/// report line. Returns the median sample for programmatic use.
pub fn bench<R>(name: &str, iters: usize, mut f: impl FnMut() -> R) -> Duration {
    assert!(iters > 0);
    std::hint::black_box(f());
    let mut samples: Vec<Duration> = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        samples.push(start.elapsed());
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<42} median {:>12} min {:>12} mean {:>12} ({iters} iters)",
        fmt_duration(median),
        fmt_duration(min),
        fmt_duration(mean),
    );
    median
}

/// Like [`bench`] but also reports throughput against `bytes` per
/// iteration.
pub fn bench_throughput<R>(name: &str, iters: usize, bytes: u64, f: impl FnMut() -> R) -> Duration {
    let median = bench(name, iters, f);
    let secs = median.as_secs_f64();
    if secs > 0.0 {
        let mbps = bytes as f64 / secs / (1024.0 * 1024.0);
        println!(
            "{:<42} {mbps:>10.1} MiB/s",
            format!("  ({name} throughput)")
        );
    }
    median
}

pub fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 10_000 {
        format!("{nanos} ns")
    } else if nanos < 10_000_000 {
        format!("{:.1} µs", nanos as f64 / 1e3)
    } else if nanos < 10_000_000_000 {
        format!("{:.1} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_plausible_median() {
        let d = bench("noop", 3, || 1 + 1);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(50)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(50)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(50)).ends_with("s"));
    }
}
