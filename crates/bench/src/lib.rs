//! # inspire-bench — the experiment harness
//!
//! Regenerates every figure of the paper's evaluation (§4): the six
//! datasets (three PubMed subsets, three TREC GOV2 subsets) swept over
//! processor counts on the modeled PNNL cluster, plus the ablations
//! DESIGN.md calls out. The `repro` binary drives it; this library holds
//! the dataset definitions, the sweep engine, and the result formatting.
//!
//! Generated corpora are megabyte-scale miniatures that *stand in* for
//! the paper's gigabyte datasets through [`perfmodel::WorkloadScale`]:
//! compute charges scale by the byte ratio and communication payloads by
//! the Heaps-law vocabulary ratio, so virtual times land in the paper's
//! range while every algorithm executes for real.

use corpus::{CorpusSpec, Flavour, SourceSet};
use inspire_core::pipeline::{run_engine, EngineRun};
use inspire_core::{Balancing, EngineConfig};
use perfmodel::CostModel;
use spmd::Component;
use std::sync::Arc;

pub mod history;
pub mod timing;

/// One of the paper's evaluation datasets.
#[derive(Debug, Clone, Copy)]
pub struct Dataset {
    /// Label exactly as the paper's figures print it.
    pub name: &'static str,
    pub flavour: Flavour,
    /// Nominal size in the paper, GB.
    pub nominal_gb: f64,
    /// Bytes we actually generate (miniature).
    pub actual_bytes: u64,
    pub seed: u64,
}

impl Dataset {
    pub fn nominal_bytes(&self) -> u64 {
        (self.nominal_gb * (1u64 << 30) as f64) as u64
    }

    /// Generate the miniature corpus.
    pub fn generate(&self) -> SourceSet {
        match self.flavour {
            Flavour::Medical => CorpusSpec::pubmed(self.actual_bytes, self.seed).generate(),
            Flavour::Web => CorpusSpec::trec(self.actual_bytes, self.seed).generate(),
            Flavour::Newswire => CorpusSpec::newswire(self.actual_bytes, self.seed).generate(),
        }
    }

    /// The scaled cost model for this dataset. The closed-vocabulary
    /// correction reflects how much faster real collections of this kind
    /// mint unique terms than the synthetic generator does (web crawls
    /// vastly more than curated abstracts).
    pub fn model(&self, sources: &SourceSet) -> Arc<CostModel> {
        let mut model = CostModel::pnnl_2007_scaled(self.nominal_bytes(), sources.total_bytes());
        let multiplier = match self.flavour {
            Flavour::Medical => 3.0,
            Flavour::Web => 12.0,
            Flavour::Newswire => 5.0,
        };
        model.scale = model.scale.with_vocab_multiplier(multiplier);
        // Dense abstracts index nearly every byte; web pages shed markup,
        // URLs and boilerplate at scan time, so their in-memory working
        // set per raw byte is much smaller.
        model.memory.working_set_expansion = match self.flavour {
            Flavour::Medical => 1.15,
            Flavour::Web => 0.65,
            Flavour::Newswire => 1.0,
        };
        Arc::new(model)
    }

    /// Smallest processor count the paper ran this dataset on (the
    /// 16.44 GB PubMed subset was only run from 4 processors — §4.2 notes
    /// even that was too small).
    pub fn min_procs(&self) -> usize {
        if self.nominal_gb >= 16.0 {
            4
        } else {
            1
        }
    }
}

/// Miniature size: 1 MiB of generated text stands for 1 GiB of nominal
/// data (ratio 1024; quick mode shrinks further).
fn mib(x: f64) -> u64 {
    (x * (1u64 << 20) as f64) as u64
}

/// The paper's three PubMed subsets (§4.2).
pub fn pubmed_datasets(quick: bool) -> Vec<Dataset> {
    let scale = if quick { 0.35 } else { 1.0 };
    vec![
        Dataset {
            name: "PubMed 2.75 GB",
            flavour: Flavour::Medical,
            nominal_gb: 2.75,
            actual_bytes: mib(2.75 * scale),
            seed: 275,
        },
        Dataset {
            name: "PubMed 6.67 GB",
            flavour: Flavour::Medical,
            nominal_gb: 6.67,
            actual_bytes: mib(6.67 * scale),
            seed: 667,
        },
        Dataset {
            name: "PubMed 16.44 GB",
            flavour: Flavour::Medical,
            nominal_gb: 16.44,
            actual_bytes: mib(16.44 * scale),
            seed: 1644,
        },
    ]
}

/// The paper's three TREC GOV2 subsets (§4.2).
pub fn trec_datasets(quick: bool) -> Vec<Dataset> {
    let scale = if quick { 0.35 } else { 1.0 };
    vec![
        Dataset {
            name: "TREC 1.00 GB",
            flavour: Flavour::Web,
            nominal_gb: 1.0,
            actual_bytes: mib(1.0 * scale),
            seed: 100,
        },
        Dataset {
            name: "TREC 4.00 GB",
            flavour: Flavour::Web,
            nominal_gb: 4.0,
            actual_bytes: mib(4.0 * scale),
            seed: 400,
        },
        Dataset {
            name: "TREC 8.21 GB",
            flavour: Flavour::Web,
            nominal_gb: 8.21,
            actual_bytes: mib(8.21 * scale),
            seed: 821,
        },
    ]
}

/// Processor counts of the paper's figures.
pub fn processor_counts(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 2, 4, 8]
    } else {
        vec![1, 2, 4, 8, 16, 32]
    }
}

/// Engine configuration used by the scaling experiments.
///
/// `chunk_docs` is small because the corpora are miniatures: a 4-document
/// load here stands for a `4 × data_scale`-document load at nominal size,
/// keeping the *number* of loads per processor (the quantity that matters
/// for dynamic balancing) faithful to the paper's configuration.
pub fn bench_config() -> EngineConfig {
    EngineConfig {
        chunk_docs: 4,
        ..EngineConfig::default()
    }
}

/// One sweep cell: a dataset processed at one processor count.
#[derive(Debug, Clone)]
pub struct RunRecord {
    pub dataset: String,
    pub nominal_gb: f64,
    pub procs: usize,
    /// Virtual wall-clock, minutes on the modeled cluster.
    pub minutes: f64,
    /// Per-component virtual seconds (critical path across ranks):
    /// scan, index, topic, AM, DocVec, ClusProj, other.
    pub component_seconds: [f64; 7],
    /// Per-rank scatter-phase seconds of the indexing stage (Figure 9).
    pub index_rank_seconds: Vec<f64>,
    pub vocab_size: usize,
    pub total_docs: u32,
}

impl RunRecord {
    pub fn from_run(ds: &Dataset, procs: usize, run: &EngineRun) -> Self {
        let master = run.master();
        RunRecord {
            dataset: ds.name.to_string(),
            nominal_gb: ds.nominal_gb,
            procs,
            minutes: run.virtual_time / 60.0,
            component_seconds: run.components.seconds.into_values(),
            index_rank_seconds: master.summary.load.iter().map(|l| l.seconds).collect(),
            vocab_size: master.summary.vocab_size,
            total_docs: master.summary.total_docs,
        }
    }

    pub fn component(&self, c: Component) -> f64 {
        let idx = Component::ALL.iter().position(|x| *x == c).unwrap();
        self.component_seconds[idx]
    }

    /// Component percentage of total engine time (the paper's Figures
    /// 6b/7b drop the "other" bucket; so do we).
    pub fn component_pct(&self, c: Component) -> f64 {
        let total: f64 = Component::ALL
            .iter()
            .filter(|&&x| x != Component::Other)
            .map(|&x| self.component(x))
            .sum();
        if total > 0.0 {
            100.0 * self.component(c) / total
        } else {
            0.0
        }
    }
}

/// Run one dataset at one processor count.
pub fn run_cell(ds: &Dataset, procs: usize, cfg: &EngineConfig) -> RunRecord {
    let sources = ds.generate();
    let model = ds.model(&sources);
    let run = run_engine(procs, model, &sources, cfg);
    RunRecord::from_run(ds, procs, &run)
}

/// Sweep datasets × processor counts.
pub fn sweep(datasets: &[Dataset], procs: &[usize], cfg: &EngineConfig) -> Vec<RunRecord> {
    let mut out = Vec::new();
    for ds in datasets {
        // Generate once per dataset, reuse across processor counts.
        let sources = ds.generate();
        let model = ds.model(&sources);
        for &p in procs {
            if p < ds.min_procs() {
                continue; // the paper did not run this configuration
            }
            eprintln!("  [{}] P={p} …", ds.name);
            let run = run_engine(p, model.clone(), &sources, cfg);
            out.push(RunRecord::from_run(ds, p, &run));
        }
    }
    out
}

/// Write records as CSV.
pub fn to_csv(records: &[RunRecord]) -> String {
    let mut s = String::from(
        "dataset,nominal_gb,procs,minutes,scan_s,index_s,topic_s,am_s,docvec_s,clusproj_s,other_s,vocab,docs\n",
    );
    for r in records {
        s.push_str(&format!(
            "{},{},{},{:.4},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{},{}\n",
            r.dataset,
            r.nominal_gb,
            r.procs,
            r.minutes,
            r.component_seconds[0],
            r.component_seconds[1],
            r.component_seconds[2],
            r.component_seconds[3],
            r.component_seconds[4],
            r.component_seconds[5],
            r.component_seconds[6],
            r.vocab_size,
            r.total_docs
        ));
    }
    s
}

/// Speedup of each record relative to the smallest processor count run
/// for its dataset: `S(P) = P_min · T(P_min) / T(P)` (ordinary relative
/// speedup; identical to `T(1)/T(P)` when the dataset was run at P=1).
pub fn speedups(records: &[RunRecord]) -> Vec<(String, usize, f64)> {
    let mut out = Vec::new();
    for r in records {
        let base = records
            .iter()
            .filter(|b| b.dataset == r.dataset)
            .min_by_key(|b| b.procs);
        if let Some(b) = base {
            out.push((
                r.dataset.clone(),
                r.procs,
                b.procs as f64 * b.minutes / r.minutes,
            ));
        }
    }
    out
}

/// Per-component relative speedup vs the smallest-P record (Figure 8).
pub fn component_speedup(records: &[RunRecord], dataset: &str, c: Component) -> Vec<(usize, f64)> {
    let base = records
        .iter()
        .filter(|r| r.dataset == dataset)
        .min_by_key(|r| r.procs);
    let Some(b) = base else {
        return Vec::new();
    };
    let t_base = b.component(c);
    let p_base = b.procs as f64;
    records
        .iter()
        .filter(|r| r.dataset == dataset)
        .map(|r| {
            let t = r.component(c);
            (r.procs, if t > 0.0 { p_base * t_base / t } else { 0.0 })
        })
        .collect()
}

/// Directory where the harness drops CSVs.
pub fn results_dir() -> std::path::PathBuf {
    let dir = std::path::PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Figure-9-style load-balance measurement: per-rank indexing time under
/// a given balancing mode.
pub fn load_balance_profile(ds: &Dataset, procs: usize, balancing: Balancing) -> (Vec<f64>, f64) {
    let cfg = EngineConfig {
        balancing,
        ..bench_config()
    };
    let rec = run_cell(ds, procs, &cfg);
    let times = rec.index_rank_seconds.clone();
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    let mean = times.iter().sum::<f64>() / times.len().max(1) as f64;
    (times, if mean > 0.0 { max / mean } else { 1.0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_match_paper() {
        let pm = pubmed_datasets(false);
        assert_eq!(pm.len(), 3);
        assert_eq!(pm[0].nominal_gb, 2.75);
        assert_eq!(pm[2].nominal_gb, 16.44);
        let tr = trec_datasets(false);
        assert_eq!(tr[0].nominal_gb, 1.0);
        assert_eq!(tr[2].nominal_gb, 8.21);
    }

    #[test]
    fn quick_mode_shrinks() {
        let full = pubmed_datasets(false);
        let quick = pubmed_datasets(true);
        for (f, q) in full.iter().zip(&quick) {
            assert!(q.actual_bytes < f.actual_bytes);
            assert_eq!(q.nominal_gb, f.nominal_gb);
        }
    }

    #[test]
    fn run_cell_produces_sane_record() {
        let ds = Dataset {
            name: "tiny",
            flavour: Flavour::Medical,
            nominal_gb: 0.001,
            actual_bytes: 96 * 1024,
            seed: 5,
        };
        let rec = run_cell(&ds, 2, &EngineConfig::for_testing());
        assert!(rec.minutes > 0.0);
        assert!(rec.total_docs > 10);
        assert_eq!(rec.index_rank_seconds.len(), 2);
        let pct_sum: f64 = [
            Component::Scan,
            Component::Index,
            Component::Topic,
            Component::Assoc,
            Component::DocVec,
            Component::ClusProj,
        ]
        .iter()
        .map(|&c| rec.component_pct(c))
        .sum();
        assert!((pct_sum - 100.0).abs() < 1e-6);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let ds = Dataset {
            name: "tiny",
            flavour: Flavour::Web,
            nominal_gb: 0.001,
            actual_bytes: 64 * 1024,
            seed: 6,
        };
        let rec = run_cell(&ds, 1, &EngineConfig::for_testing());
        let csv = to_csv(&[rec]);
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("dataset,"));
    }

    #[test]
    fn speedups_relative_to_p1() {
        let ds = Dataset {
            name: "tiny",
            flavour: Flavour::Medical,
            nominal_gb: 0.001,
            actual_bytes: 96 * 1024,
            seed: 7,
        };
        let cfg = EngineConfig::for_testing();
        let recs = sweep(&[ds], &[1, 2], &cfg);
        let sp = speedups(&recs);
        let p1 = sp.iter().find(|(_, p, _)| *p == 1).unwrap();
        assert!((p1.2 - 1.0).abs() < 1e-12);
    }
}
