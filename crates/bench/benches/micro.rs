//! Criterion microbenchmarks for the substrate and the engine's kernels.
//!
//! These measure *real wall-clock* performance of the building blocks on
//! the host machine (unlike the `repro` harness, which reports virtual
//! time on the modeled cluster). Useful for catching performance
//! regressions in the library itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ga::{DistHashMap, GlobalArray, TaskQueue};
use inspire_core::hierarchy::{agglomerate, Linkage};
use inspire_core::linalg::jacobi_eigen;
use inspire_core::tokenize::Tokenizer;
use inspire_core::topicality::bookstein_score;
use spmd::{ReduceOp, Runtime};
use themeview::Terrain;

fn bench_tokenizer(c: &mut Criterion) {
    let tokenizer = Tokenizer::default();
    let text = "The effects of cardiomyopathy and renal-failure on p53kinase \
                expression were studied in 1284 patients; hypertension, \
                diabetes and chronic obstructive disease were controlled for. "
        .repeat(64);
    let mut g = c.benchmark_group("tokenizer");
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("tokenize_into", |b| {
        b.iter(|| {
            let mut n = 0u64;
            tokenizer.tokenize_into(&text, |_| n += 1);
            n
        })
    });
    g.finish();
}

fn bench_dhashmap(c: &mut Criterion) {
    let mut g = c.benchmark_group("dist_hashmap");
    for p in [1usize, 4] {
        g.bench_with_input(BenchmarkId::new("insert_10k", p), &p, |b, &p| {
            let rt = Runtime::for_testing();
            b.iter(|| {
                rt.run(p, |ctx| {
                    let m = DistHashMap::create(ctx);
                    let per = 10_000 / ctx.nprocs();
                    for i in 0..per {
                        m.insert_or_get(ctx, &format!("term{}-{}", ctx.rank(), i));
                    }
                })
            })
        });
    }
    g.finish();
}

fn bench_task_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("task_queue");
    for p in [2usize, 8] {
        g.bench_with_input(BenchmarkId::new("drain_4k_tasks", p), &p, |b, &p| {
            let rt = Runtime::for_testing();
            b.iter(|| {
                rt.run(p, |ctx| {
                    let q = TaskQueue::create(ctx, 4096 / ctx.nprocs());
                    let mut n = 0usize;
                    while q.pop(ctx).is_some() {
                        n += 1;
                    }
                    n
                })
            })
        });
    }
    g.finish();
}

fn bench_global_array(c: &mut Criterion) {
    let mut g = c.benchmark_group("global_array");
    g.bench_function("acc_1mb_4ranks", |b| {
        let rt = Runtime::for_testing();
        b.iter(|| {
            rt.run(4, |ctx| {
                let a = GlobalArray::<u64>::create(ctx, 128 * 1024);
                let data = vec![1u64; 128 * 1024];
                a.acc(ctx, 0, &data);
                ctx.barrier();
            })
        })
    });
    g.bench_function("read_inc_contended", |b| {
        let rt = Runtime::for_testing();
        b.iter(|| {
            rt.run(4, |ctx| {
                let a = GlobalArray::<i64>::create(ctx, 64);
                for i in 0..2_000 {
                    a.read_inc(ctx, i % 64, 1);
                }
            })
        })
    });
    g.finish();
}

fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives");
    g.bench_function("allreduce_64k_f64_4ranks", |b| {
        let rt = Runtime::for_testing();
        b.iter(|| {
            rt.run(4, |ctx| {
                let v = vec![ctx.rank() as f64; 8192];
                ctx.allreduce_f64(v, ReduceOp::Sum)
            })
        })
    });
    g.finish();
}

fn bench_numeric_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("numeric");
    g.bench_function("jacobi_eigen_64x64", |b| {
        let n = 64;
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let v = 1.0 / (1.0 + (i as f64 - j as f64).abs());
                a[i * n + j] = v;
                a[j * n + i] = v;
            }
        }
        b.iter(|| jacobi_eigen(&a, n, 60))
    });
    g.bench_function("bookstein_100k_terms", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for t in 0..100_000u64 {
                if let Some(s) =
                    bookstein_score((t % 97 + 2) as u32, t % 1000 + 2, 100_000, 2, 0.5)
                {
                    acc += s;
                }
            }
            acc
        })
    });
    g.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut g = c.benchmark_group("hierarchy");
    for n in [32usize, 96] {
        g.bench_with_input(BenchmarkId::new("agglomerate_avg", n), &n, |b, &n| {
            let points: Vec<f64> = (0..n * 16)
                .map(|i| ((i * 2654435761) % 1000) as f64 / 1000.0)
                .collect();
            b.iter(|| agglomerate(&points, n, 16, Linkage::Average))
        });
    }
    g.finish();
}

fn bench_terrain(c: &mut Criterion) {
    let points: Vec<(f64, f64)> = (0..2000)
        .map(|i| {
            let a = (i * 2654435761usize) % 997;
            let b = (i * 40503usize) % 991;
            (a as f64 / 99.7, b as f64 / 99.1)
        })
        .collect();
    let mut g = c.benchmark_group("themeview");
    g.bench_function("terrain_2k_points_96x96", |b| {
        b.iter(|| Terrain::build(&points, 96, 96, None))
    });
    let t = Terrain::build(&points, 96, 96, None);
    g.bench_function("contours_6_levels", |b| {
        b.iter(|| t.contours(&[0.15, 0.3, 0.45, 0.6, 0.75, 0.9]))
    });
    g.bench_function("peaks", |b| b.iter(|| t.peaks(10, 0.2, 5)));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets =
        bench_tokenizer,
        bench_dhashmap,
        bench_task_queue,
        bench_global_array,
        bench_allreduce,
        bench_numeric_kernels,
        bench_hierarchy,
        bench_terrain
}
criterion_main!(benches);
