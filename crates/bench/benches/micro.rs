//! Microbenchmarks for the substrate and the engine's kernels.
//!
//! These measure *real wall-clock* performance of the building blocks on
//! the host machine (unlike the `repro` harness, which reports virtual
//! time on the modeled cluster). Useful for catching performance
//! regressions in the library itself.
//!
//! Run with `cargo bench --bench micro` (plain `harness = false` main;
//! criterion is unavailable offline).

use ga::{DistHashMap, GlobalArray, TaskQueue};
use inspire_bench::timing::{bench, bench_throughput};
use inspire_core::hierarchy::{agglomerate, Linkage};
use inspire_core::linalg::jacobi_eigen;
use inspire_core::tokenize::Tokenizer;
use inspire_core::topicality::bookstein_score;
use spmd::{ReduceOp, Runtime};
use themeview::Terrain;

const ITERS: usize = 10;

fn bench_tokenizer() {
    let tokenizer = Tokenizer::default();
    let text = "The effects of cardiomyopathy and renal-failure on p53kinase \
                expression were studied in 1284 patients; hypertension, \
                diabetes and chronic obstructive disease were controlled for. "
        .repeat(64);
    bench_throughput("tokenizer/tokenize_into", ITERS, text.len() as u64, || {
        let mut n = 0u64;
        tokenizer.tokenize_into(&text, |_| n += 1);
        n
    });
}

fn bench_dhashmap() {
    // Zipf-ish mix: ~4k distinct terms over 10k inserts, so both paths
    // exercise the hit case (cache-style reuse) as well as fresh interns.
    let terms: Vec<String> = (0..10_000)
        .map(|i| format!("term{}", (i * 2654435761usize) % 4096))
        .collect();
    let refs: Vec<&str> = terms.iter().map(|s| s.as_str()).collect();
    for p in [1usize, 4] {
        let rt = Runtime::for_testing();
        bench(
            &format!("dist_hashmap/insert_scalar_10k/{p}"),
            ITERS,
            || {
                rt.run(p, |ctx| {
                    let m = DistHashMap::create(ctx);
                    let per = refs.len() / ctx.nprocs();
                    for t in &refs[ctx.rank() * per..(ctx.rank() + 1) * per] {
                        m.insert_or_get(ctx, t);
                    }
                })
            },
        );
        let rt = Runtime::for_testing();
        bench(
            &format!("dist_hashmap/insert_batch64_10k/{p}"),
            ITERS,
            || {
                rt.run(p, |ctx| {
                    let m = DistHashMap::create(ctx);
                    let per = refs.len() / ctx.nprocs();
                    for chunk in refs[ctx.rank() * per..(ctx.rank() + 1) * per].chunks(64) {
                        m.insert_or_get_batch(ctx, chunk);
                    }
                })
            },
        );
    }
}

fn bench_task_queue() {
    for p in [2usize, 8] {
        let rt = Runtime::for_testing();
        bench(&format!("task_queue/drain_4k_tasks/{p}"), ITERS, || {
            rt.run(p, |ctx| {
                let q = TaskQueue::create(ctx, 4096 / ctx.nprocs());
                let mut n = 0usize;
                while q.pop(ctx).is_some() {
                    n += 1;
                }
                n
            })
        });
    }
}

fn bench_global_array() {
    let rt = Runtime::for_testing();
    bench("global_array/acc_1mb_4ranks", ITERS, || {
        rt.run(4, |ctx| {
            let a = GlobalArray::<u64>::create(ctx, 128 * 1024);
            let data = vec![1u64; 128 * 1024];
            a.acc(ctx, 0, &data);
            ctx.barrier();
        })
    });
    bench("global_array/read_inc_contended", ITERS, || {
        rt.run(4, |ctx| {
            let a = GlobalArray::<i64>::create(ctx, 64);
            for i in 0..2_000 {
                a.read_inc(ctx, i % 64, 1);
            }
        })
    });
}

fn bench_allreduce() {
    let rt = Runtime::for_testing();
    bench("collectives/allreduce_64k_f64_4ranks", ITERS, || {
        rt.run(4, |ctx| {
            let v = vec![ctx.rank() as f64; 8192];
            ctx.allreduce_f64(v, ReduceOp::Sum)
        })
    });
}

fn bench_numeric_kernels() {
    let n = 64;
    let mut a = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let v = 1.0 / (1.0 + (i as f64 - j as f64).abs());
            a[i * n + j] = v;
            a[j * n + i] = v;
        }
    }
    bench("numeric/jacobi_eigen_64x64", ITERS, || {
        jacobi_eigen(&a, n, 60)
    });
    bench("numeric/bookstein_100k_terms", ITERS, || {
        let mut acc = 0.0f64;
        for t in 0..100_000u64 {
            if let Some(s) = bookstein_score((t % 97 + 2) as u32, t % 1000 + 2, 100_000, 2, 0.5) {
                acc += s;
            }
        }
        acc
    });
}

fn bench_hierarchy() {
    for n in [32usize, 96] {
        let points: Vec<f64> = (0..n * 16)
            .map(|i| ((i * 2654435761) % 1000) as f64 / 1000.0)
            .collect();
        bench(&format!("hierarchy/agglomerate_avg/{n}"), ITERS, || {
            agglomerate(&points, n, 16, Linkage::Average)
        });
    }
}

fn bench_terrain() {
    let points: Vec<(f64, f64)> = (0..2000)
        .map(|i| {
            let a = (i * 2654435761usize) % 997;
            let b = (i * 40503usize) % 991;
            (a as f64 / 99.7, b as f64 / 99.1)
        })
        .collect();
    bench("themeview/terrain_2k_points_96x96", ITERS, || {
        Terrain::build(&points, 96, 96, None)
    });
    let t = Terrain::build(&points, 96, 96, None);
    bench("themeview/contours_6_levels", ITERS, || {
        t.contours(&[0.15, 0.3, 0.45, 0.6, 0.75, 0.9])
    });
    bench("themeview/peaks", ITERS, || t.peaks(10, 0.2, 5));
}

fn main() {
    bench_tokenizer();
    bench_dhashmap();
    bench_task_queue();
    bench_global_array();
    bench_allreduce();
    bench_numeric_kernels();
    bench_hierarchy();
    bench_terrain();
}
