//! Criterion benchmarks of the full pipeline and its stages on a small
//! real corpus (host wall-clock, not virtual time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use corpus::CorpusSpec;
use inspire_core::index::invert;
use inspire_core::pipeline::run_engine;
use inspire_core::scan::scan;
use inspire_core::EngineConfig;
use perfmodel::CostModel;
use spmd::Runtime;
use std::sync::Arc;

fn bench_stages(c: &mut Criterion) {
    let sources = CorpusSpec::pubmed(512 * 1024, 42).generate();
    let bytes = sources.total_bytes();
    let cfg = EngineConfig::for_testing();

    let mut g = c.benchmark_group("stages");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("scan_512k", |b| {
        let rt = Runtime::for_testing();
        b.iter(|| rt.run(2, |ctx| scan(ctx, &sources, &cfg).total_docs))
    });
    g.bench_function("scan_plus_invert_512k", |b| {
        let rt = Runtime::for_testing();
        b.iter(|| {
            rt.run(2, |ctx| {
                let s = scan(ctx, &sources, &cfg);
                invert(ctx, &s, &cfg).total_tokens
            })
        })
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let sources = CorpusSpec::pubmed(512 * 1024, 7).generate();
    let bytes = sources.total_bytes();
    let cfg = EngineConfig::for_testing();
    let model = Arc::new(CostModel::zero());

    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Bytes(bytes));
    for p in [1usize, 4] {
        g.bench_with_input(BenchmarkId::new("end_to_end_512k", p), &p, |b, &p| {
            b.iter(|| run_engine(p, model.clone(), &sources, &cfg).virtual_time)
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_stages, bench_end_to_end
}
criterion_main!(benches);
