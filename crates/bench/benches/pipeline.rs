//! Benchmarks of the full pipeline and its stages on a small real corpus
//! (host wall-clock, not virtual time).
//!
//! Run with `cargo bench --bench pipeline` (plain `harness = false` main;
//! criterion is unavailable offline).

use corpus::CorpusSpec;
use inspire_bench::timing::bench_throughput;
use inspire_core::index::invert;
use inspire_core::pipeline::run_engine;
use inspire_core::scan::scan;
use inspire_core::EngineConfig;
use perfmodel::CostModel;
use spmd::Runtime;
use std::sync::Arc;

const ITERS: usize = 10;

fn bench_stages() {
    let sources = CorpusSpec::pubmed(512 * 1024, 42).generate();
    let bytes = sources.total_bytes();
    let cfg = EngineConfig::for_testing();

    let rt = Runtime::for_testing();
    bench_throughput("stages/scan_512k", ITERS, bytes, || {
        rt.run(2, |ctx| scan(ctx, &sources, &cfg).total_docs)
    });
    bench_throughput("stages/scan_plus_invert_512k", ITERS, bytes, || {
        rt.run(2, |ctx| {
            let s = scan(ctx, &sources, &cfg);
            invert(ctx, &s, &cfg).total_tokens
        })
    });
}

fn bench_end_to_end() {
    let sources = CorpusSpec::pubmed(512 * 1024, 7).generate();
    let bytes = sources.total_bytes();
    let cfg = EngineConfig::for_testing();
    let model = Arc::new(CostModel::zero());

    for p in [1usize, 4] {
        bench_throughput(
            &format!("pipeline/end_to_end_512k/{p}"),
            ITERS,
            bytes,
            || run_engine(p, model.clone(), &sources, &cfg).virtual_time,
        );
    }
}

fn main() {
    bench_stages();
    bench_end_to_end();
}
