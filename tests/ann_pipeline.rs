//! Pipeline-level IVF ANN properties: snapshots built at P = 1 and
//! P = 4 carry bit-identical ANN sections, searching every cluster
//! (`nprobe = k`) reproduces the exhaustive f64 oracle bit-for-bit,
//! and the quantized signature store is at least 4x smaller than the
//! fixed-width `f64` signature section it accelerates.

use std::sync::Arc;
use visual_analytics::engine::ann::{self, AnnIndexView};
use visual_analytics::engine::EngineSnapshot;
use visual_analytics::prelude::*;

const ANN_SECTIONS: [&str; 6] = ["qsig", "qscale", "qoff", "signrm", "ivfdoc", "ivfoff"];

fn build_snapshot(p: usize, src: &corpus::SourceSet, out: &std::path::Path) -> EngineSnapshot {
    let cfg = EngineConfig {
        snapshot_out: Some(out.to_path_buf()),
        ..EngineConfig::for_testing()
    };
    run_engine(p, Arc::new(CostModel::zero()), src, &cfg);
    EngineSnapshot::open(out).expect("snapshot opens")
}

/// Exhaustive-oracle check for one snapshot: IVF search probing all k
/// clusters must return the same docs with bit-identical scores as the
/// brute-force scan, for every sampled query and both top depths.
fn assert_full_probe_is_exhaustive(snap: &EngineSnapshot) -> Vec<(u32, u64)> {
    let meta = snap.meta();
    let (k, m) = (meta.k, meta.m_dims);
    let store = snap.store();
    let sigs = store.require("sigs").unwrap().as_f64s().unwrap();
    let codes = store.require("qsig").unwrap().as_records(m).unwrap();
    let sums = ann::code_sums(codes, m);
    let view = AnnIndexView {
        k,
        m,
        centroids: store.require("centroid").unwrap().as_f64s().unwrap(),
        ivfoff: store.require("ivfoff").unwrap().as_u64s().unwrap(),
        ivfdoc: store.require("ivfdoc").unwrap().as_u32s().unwrap(),
        codes,
        scale: store.require("qscale").unwrap().as_f64s().unwrap(),
        offset: store.require("qoff").unwrap().as_f64s().unwrap(),
        norm: store.require("signrm").unwrap().as_f64s().unwrap(),
        sums: &sums,
        exact: sigs,
    };
    let docs = view.docs();
    assert_eq!(docs, meta.total_docs as usize);
    assert!(docs > 0, "empty snapshot");

    let mut flat = Vec::new();
    let mut queried = 0usize;
    for q in (0..docs).step_by(docs / 11 + 1) {
        let query = &sigs[q * m..(q + 1) * m];
        if ann::l2_norm(query) == 0.0 {
            continue;
        }
        queried += 1;
        for top in [10usize, docs] {
            let mut stats = ann::SearchStats::default();
            let got = ann::search(&view, query, top, k, &mut stats);
            let want = ann::exhaustive(sigs, m, query, top);
            assert_eq!(stats.probed, k, "q={q} top={top}");
            assert_eq!(got.len(), want.len(), "q={q} top={top}");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.doc, w.doc, "q={q} top={top}");
                assert_eq!(
                    g.score.to_bits(),
                    w.score.to_bits(),
                    "q={q} top={top} doc={}",
                    g.doc
                );
                flat.push((g.doc, g.score.to_bits()));
            }
        }
    }
    assert!(
        queried >= 3,
        "too few non-null query signatures ({queried})"
    );
    flat
}

#[test]
fn ivf_full_probe_matches_exhaustive_at_p1_and_p4() {
    let src = CorpusSpec::pubmed(192 * 1024, 7).generate();
    let dir = std::env::temp_dir().join(format!("va-ann-pipe-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let mut per_p = Vec::new();
    let mut section_bytes: Vec<Vec<Vec<u8>>> = Vec::new();
    for &p in &[1usize, 4] {
        let snap = build_snapshot(p, &src, &dir.join(format!("p{p}.isnap")));
        assert!(
            snap.has_ann(),
            "P={p} Final snapshot must carry ANN sections"
        );
        per_p.push(assert_full_probe_is_exhaustive(&snap));
        section_bytes.push(
            ANN_SECTIONS
                .iter()
                .map(|s| snap.store().require(s).unwrap().bytes().to_vec())
                .collect(),
        );
    }

    // Identical results and byte-identical ANN sections across P.
    assert_eq!(per_p[0], per_p[1], "P=1 vs P=4 ANN results diverge");
    for (i, name) in ANN_SECTIONS.iter().enumerate() {
        assert_eq!(
            section_bytes[0][i], section_bytes[1][i],
            "section `{name}` differs between P=1 and P=4"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quantized_sections_shrink_signature_storage_4x() {
    let src = CorpusSpec::pubmed(160 * 1024, 13).generate();
    let out = std::env::temp_dir().join(format!("va-ann-shrink-{}.isnap", std::process::id()));
    let _ = std::fs::remove_file(&out);
    let snap = build_snapshot(2, &src, &out);
    assert!(snap.has_ann());

    let size_of = |name: &str| snap.store().require(name).unwrap().bytes().len();
    let exact = size_of("sigs");
    let quant: usize = ANN_SECTIONS.iter().map(|s| size_of(s)).sum();
    assert!(exact > 0, "empty sigs section");
    assert!(
        quant * 4 <= exact,
        "quantized store {quant} B is less than 4x smaller than exact sigs {exact} B"
    );

    let _ = std::fs::remove_file(&out);
}
