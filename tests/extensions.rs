//! Tests for the paper's extension points: hierarchical clustering
//! (§3.5's alternatives), 3-D projection, drill-down interaction (§6's
//! "next frontier"), and product persistence (step 7/9).

use std::sync::Arc;
use visual_analytics::engine::hierarchy::Linkage;
use visual_analytics::engine::interact::{select_cluster, select_rect, subset_corpus};
use visual_analytics::engine::io::{
    read_coords_csv, read_signatures, write_coords_csv, write_signatures,
};
use visual_analytics::engine::ClusterMethod;
use visual_analytics::prelude::*;

fn corpus() -> SourceSet {
    CorpusSpec::pubmed(192 * 1024, 808).generate()
}

fn hier_cfg(linkage: Linkage, adaptive: bool) -> EngineConfig {
    EngineConfig {
        cluster_method: ClusterMethod::Hierarchical {
            linkage,
            fine_factor: 3,
            adaptive,
        },
        ..EngineConfig::for_testing()
    }
}

#[test]
fn hierarchical_clustering_is_deterministic_across_p() {
    let src = corpus();
    let cfg = hier_cfg(Linkage::Average, false);
    let a = run_engine(1, Arc::new(CostModel::zero()), &src, &cfg)
        .outputs
        .remove(0);
    for p in [2, 4] {
        let b = run_engine(p, Arc::new(CostModel::zero()), &src, &cfg)
            .outputs
            .remove(0);
        assert_eq!(a.cluster_sizes, b.cluster_sizes, "P={p}");
        assert_eq!(a.all_assignments, b.all_assignments, "P={p}");
        let ca = a.coords.as_ref().unwrap();
        let cb = b.coords.as_ref().unwrap();
        for ((x1, y1), (x2, y2)) in ca.iter().zip(cb) {
            assert!((x1 - x2).abs() < 1e-6 && (y1 - y2).abs() < 1e-6);
        }
    }
}

#[test]
fn hierarchical_produces_at_most_k_clusters_covering_all_docs() {
    let src = corpus();
    for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
        let cfg = hier_cfg(linkage, false);
        let out = run_engine(3, Arc::new(CostModel::zero()), &src, &cfg)
            .outputs
            .remove(0);
        assert!(out.cluster_sizes.len() <= cfg.n_clusters);
        assert_eq!(
            out.cluster_sizes.iter().sum::<u64>(),
            out.summary.total_docs as u64,
            "{linkage:?}"
        );
    }
}

#[test]
fn adaptive_cut_picks_k_within_bounds() {
    let src = corpus();
    let cfg = hier_cfg(Linkage::Complete, true);
    let out = run_engine(2, Arc::new(CostModel::zero()), &src, &cfg)
        .outputs
        .remove(0);
    let k = out.cluster_sizes.len();
    assert!(k >= 2 && k <= cfg.n_clusters, "adaptive picked k={k}");
}

#[test]
fn three_d_projection_adds_an_axis() {
    let src = corpus();
    let cfg2 = EngineConfig::for_testing();
    let cfg3 = EngineConfig {
        projection_dims: 3,
        ..EngineConfig::for_testing()
    };
    let zero = Arc::new(CostModel::zero());
    let out2 = run_engine(1, zero.clone(), &src, &cfg2).outputs.remove(0);
    let out3 = run_engine(1, zero, &src, &cfg3).outputs.remove(0);
    let n = out2.summary.total_docs as usize;
    assert_eq!(out2.projection_dims, 2);
    assert_eq!(out3.projection_dims, 3);
    assert_eq!(out2.local_coords_nd.len(), n * 2);
    assert_eq!(out3.local_coords_nd.len(), n * 3);
    // The first two components agree between the 2-D and 3-D runs.
    for i in 0..n {
        assert!((out3.local_coords_nd[i * 3] - out2.local_coords_nd[i * 2]).abs() < 1e-9);
        assert!((out3.local_coords_nd[i * 3 + 1] - out2.local_coords_nd[i * 2 + 1]).abs() < 1e-9);
    }
    // The third axis carries real variance (not all zeros).
    let z_spread: f64 = (0..n).map(|i| out3.local_coords_nd[i * 3 + 2].abs()).sum();
    assert!(z_spread > 1e-6, "third component is degenerate");
}

#[test]
fn drill_down_from_rectangle_selection() {
    let src = corpus();
    let cfg = EngineConfig::for_testing();
    let top = run_engine(2, Arc::new(CostModel::zero()), &src, &cfg);
    let master = top.master();
    let coords = master.coords.as_ref().unwrap();
    // Select the left half of the layout.
    let (min_x, max_x) = coords
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), (x, _)| {
            (lo.min(*x), hi.max(*x))
        });
    let mid = (min_x + max_x) / 2.0;
    let selected = select_rect(coords, (min_x, f64::NEG_INFINITY), (mid, f64::INFINITY));
    assert!(!selected.is_empty() && selected.len() < coords.len());
    let sub = subset_corpus(&src, &selected);
    assert_eq!(sub.total_records(), selected.len());
    // The sub-analysis runs and covers exactly the selection.
    let drill = run_engine(2, Arc::new(CostModel::zero()), &sub, &cfg);
    assert_eq!(drill.master().summary.total_docs as usize, selected.len());
}

#[test]
fn cluster_selection_round_trips_through_subset() {
    let src = corpus();
    let cfg = EngineConfig::for_testing();
    let top = run_engine(3, Arc::new(CostModel::zero()), &src, &cfg);
    let master = top.master();
    let assignments = master.all_assignments.as_ref().unwrap();
    for c in 0..master.cluster_sizes.len() {
        let selected = select_cluster(assignments, c as u32);
        assert_eq!(
            selected.len() as u64,
            master.cluster_sizes[c],
            "cluster {c}"
        );
    }
}

#[test]
fn engine_products_persist_and_reload() {
    let src = corpus();
    let cfg = EngineConfig::for_testing();
    let run = run_engine(2, Arc::new(CostModel::zero()), &src, &cfg);
    let master = run.master();
    let coords = master.coords.as_ref().unwrap();

    let dir = std::env::temp_dir();
    let cpath = dir.join(format!("va-ext-coords-{}.csv", std::process::id()));
    write_coords_csv(&cpath, coords, master.all_assignments.as_deref()).unwrap();
    let back = read_coords_csv(&cpath).unwrap();
    assert_eq!(back.len(), coords.len());
    for (i, (doc, x, y, c)) in back.iter().enumerate() {
        assert_eq!(*doc as usize, i);
        assert!((x - coords[i].0).abs() < 1e-6);
        assert!((y - coords[i].1).abs() < 1e-6);
        assert_eq!(*c, master.all_assignments.as_ref().unwrap()[i] as i64);
    }
    std::fs::remove_file(&cpath).ok();

    // Signatures: persist this rank's block and reload.
    let spath = dir.join(format!("va-ext-sigs-{}.bin", std::process::id()));
    let n = master.local_coords_nd.len() / master.projection_dims;
    write_signatures(
        &spath,
        n as u64,
        master.projection_dims as u32,
        &master.local_coords_nd,
    )
    .unwrap();
    let (rows, cols, data) = read_signatures(&spath).unwrap();
    assert_eq!(rows as usize, n);
    assert_eq!(cols as usize, master.projection_dims);
    assert_eq!(data, master.local_coords_nd);
    std::fs::remove_file(&spath).ok();
}

#[test]
fn lustre_storage_speeds_up_high_p_scanning() {
    let src = corpus();
    let cfg = EngineConfig::for_testing();
    let nominal = 8u64 << 30;
    let mut shared = CostModel::pnnl_2007_scaled(nominal, src.total_bytes());
    shared.cluster.storage = perfmodel::StorageModel::SharedFixed {
        aggregate_bps: 100e6,
    };
    let mut lustre = shared.clone();
    lustre.cluster.storage = perfmodel::StorageModel::Parallel {
        per_node_bps: 300e6,
        backplane_bps: 6e9,
    };
    let t_shared = run_engine(32, Arc::new(shared), &src, &cfg)
        .components
        .get(Component::Scan);
    let t_lustre = run_engine(32, Arc::new(lustre), &src, &cfg)
        .components
        .get(Component::Scan);
    assert!(
        t_lustre < t_shared * 0.8,
        "lustre {t_lustre} vs shared {t_shared}"
    );
}
