//! Intra-rank parallelism must be invisible in every algorithmic
//! output: the engine at `threads_per_rank = 4` has to produce
//! bit-identical summaries, coordinates, and cluster assignments to
//! the serial run. The pool only changes host wall-clock.
//!
//! The guarantee comes from `IntraPool::map_chunks`: chunk boundaries
//! depend only on the item count, partials merge in chunk index order,
//! and all virtual-time charges land on the rank thread after the merge.

use std::sync::Arc;
use visual_analytics::prelude::*;

fn run_with_threads(src: &SourceSet, nprocs: usize, threads: usize) -> EngineRun {
    let cfg = EngineConfig {
        threads_per_rank: threads,
        ..EngineConfig::for_testing()
    };
    run_engine(nprocs, Arc::new(CostModel::pnnl_2007()), src, &cfg)
}

/// Everything deterministically comparable about a run, formatted so
/// f64s compare exactly (Debug prints round-trip bit patterns).
///
/// Virtual clocks, component timers, and the per-rank `load` statistics
/// are deliberately excluded: the dynamic work-stealing queue and the
/// one-sided vocab RPCs interleave by *host* scheduling, so their
/// virtual-time attribution jitters run-to-run even at a fixed pool
/// width (pre-existing behavior, observable on the unmodified serial
/// path). Everything algorithmic must be bit-identical.
fn fingerprint(run: &EngineRun) -> String {
    let master = run.master();
    let s = &master.summary;
    format!(
        "vocab={} docs={} tokens={} n={} m={} exp={} sig={:?} iters={} \
         obj={:?} var={:?} coords={:?} assignments={:?} labels={:?} sizes={:?}",
        s.vocab_size,
        s.total_docs,
        s.total_tokens,
        s.n_major,
        s.m_dims,
        s.dim_expansions,
        s.sig_stats,
        s.kmeans_iters,
        s.kmeans_objective,
        s.variance_explained,
        master.coords,
        master.all_assignments,
        master.cluster_labels,
        master.cluster_sizes,
    )
}

#[test]
fn thread_pool_width_is_invisible() {
    let src = CorpusSpec::pubmed(384 * 1024, 4242).generate();
    let serial = run_with_threads(&src, 2, 1);
    let sf = fingerprint(&serial);
    assert!(
        serial.master().summary.total_docs > 100,
        "corpus too small to exercise the chunked paths"
    );
    for threads in [2, 4] {
        let par = run_with_threads(&src, 2, threads);
        assert_eq!(
            sf,
            fingerprint(&par),
            "threads_per_rank={threads} diverged from the serial run"
        );
    }
}

#[test]
fn thread_pool_width_is_invisible_single_rank() {
    // Single rank maximizes per-rank document count, stressing chunk
    // boundaries that don't divide evenly.
    let src = CorpusSpec::trec(128 * 1024, 99).generate();
    let serial = run_with_threads(&src, 1, 1);
    let par = run_with_threads(&src, 1, 4);
    assert_eq!(fingerprint(&serial), fingerprint(&par));
}

#[test]
fn local_coords_bitwise_equal_per_rank() {
    // Beyond the gathered master view: every rank's local block must
    // match element-for-element (exact f64 equality, not tolerance).
    let src = CorpusSpec::pubmed(128 * 1024, 7).generate();
    let a = run_with_threads(&src, 3, 1);
    let b = run_with_threads(&src, 3, 4);
    for (rank, (oa, ob)) in a.outputs.iter().zip(&b.outputs).enumerate() {
        assert_eq!(oa.local_coords_nd.len(), ob.local_coords_nd.len());
        for (i, (x, y)) in oa
            .local_coords_nd
            .iter()
            .zip(&ob.local_coords_nd)
            .enumerate()
        {
            assert!(
                x.to_bits() == y.to_bits(),
                "rank {rank} coord {i}: {x:?} vs {y:?}"
            );
        }
        assert_eq!(oa.assignments, ob.assignments, "rank {rank} assignments");
    }
}
