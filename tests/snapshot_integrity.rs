//! Snapshot integrity and serving-identity tests.
//!
//! Two guarantees from the snapshot subsystem are verified here from the
//! outside, through the same public API `vaengine` uses:
//!
//! 1. **No silent corruption**: any single bit flip, any truncation, and
//!    any appended garbage must turn a valid snapshot into a descriptive
//!    load error — never a panic, never a partially loaded engine.
//! 2. **Serving identity**: queries answered from a loaded snapshot are
//!    byte-identical (document ids and score bits) to queries answered by
//!    the freshly run in-memory pipeline, for snapshots written at both
//!    P=1 and P=4.

use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use visual_analytics::engine::query::{self, Query};
use visual_analytics::engine::snapshot::EngineSnapshot;
use visual_analytics::engine::{index::invert, scan::scan};
use visual_analytics::prelude::*;

fn corpus() -> SourceSet {
    CorpusSpec {
        source_bytes: 8 * 1024,
        ..CorpusSpec::pubmed(96 * 1024, 41)
    }
    .generate()
}

fn snapshot_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("va-integrity-{}-{tag}.isnap", std::process::id()))
}

/// One engine snapshot, built once and shared by the corruption tests.
fn snapshot_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let path = snapshot_path("shared");
        let cfg = EngineConfig {
            snapshot_out: Some(path.clone()),
            ..EngineConfig::for_testing()
        };
        run_engine(2, Arc::new(CostModel::zero()), &corpus(), &cfg);
        let bytes = std::fs::read(&path).expect("snapshot written");
        let _ = std::fs::remove_file(&path);
        bytes
    })
}

/// Loading `bytes` as an engine snapshot must fail with a descriptive
/// `io::Error`, and must not panic.
fn assert_rejected(bytes: &[u8], what: &str) {
    let res = inspire_store::Snapshot::from_bytes(bytes, "corrupted")
        .and_then(EngineSnapshot::from_store);
    match res {
        Ok(_) => panic!("{what}: corrupted snapshot was accepted"),
        Err(e) => {
            let msg = e.to_string();
            assert!(
                msg.contains("corrupted") && msg.len() > 12,
                "{what}: error lacks context: {msg:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_single_bit_flip_is_rejected(pos_seed in 0u64.., bit in 0u8..8) {
        let good = snapshot_bytes();
        let pos = (pos_seed % good.len() as u64) as usize;
        let mut bad = good.to_vec();
        bad[pos] ^= 1 << bit;
        assert_rejected(&bad, &format!("bit {bit} of byte {pos}"));
    }

    #[test]
    fn any_truncation_is_rejected(len_seed in 0u64..) {
        let good = snapshot_bytes();
        let keep = (len_seed % good.len() as u64) as usize;
        assert_rejected(&good[..keep], &format!("truncated to {keep} bytes"));
    }

    #[test]
    fn appended_garbage_is_rejected(extra in prop::collection::vec(0u8..=255, 1..64)) {
        let mut bad = snapshot_bytes().to_vec();
        bad.extend_from_slice(&extra);
        assert_rejected(&bad, &format!("{} garbage bytes appended", extra.len()));
    }
}

#[test]
fn the_pristine_snapshot_itself_loads() {
    let snap = inspire_store::Snapshot::from_bytes(snapshot_bytes(), "pristine")
        .and_then(EngineSnapshot::from_store)
        .expect("uncorrupted snapshot loads");
    assert_eq!(snap.meta().stage, Stage::Final);
    assert_eq!(snap.meta().nprocs, 2);
}

/// Hits from `query::search` with doc id and raw score bits, plus the
/// boolean-evaluation ids, gathered identically on every rank.
type ServedAnswers = (Vec<(u32, u64)>, Vec<u32>);

fn answer_queries(
    ctx: &spmd::Ctx,
    scan: &visual_analytics::engine::scan::ScanOutput,
    index: &visual_analytics::engine::index::InvertedIndex,
    free_text: &str,
    boolean: &Query,
) -> ServedAnswers {
    let hits = query::search(ctx, scan, index, free_text, 20)
        .into_iter()
        .map(|h| (h.doc, h.score.to_bits()))
        .collect();
    let docs = query::evaluate(ctx, scan, index, boolean);
    (hits, docs)
}

#[test]
fn snapshot_served_queries_match_in_memory_pipeline() {
    let src = corpus();
    let cfg = EngineConfig::for_testing();
    let zero = Arc::new(CostModel::zero());

    // Pick query terms from the actual vocabulary (single-rank probe).
    let (term_a, term_b) = {
        let src = src.clone();
        let cfg = cfg.clone();
        let mut res = Runtime::new(zero.clone()).run(1, move |ctx| {
            let s = scan(ctx, &src, &cfg);
            let idx = invert(ctx, &s, &cfg);
            let mut picks = (0..s.vocab_size())
                .filter(|&t| idx.df[t] >= 4)
                .map(|t| s.terms[t].to_string());
            (picks.next().unwrap(), picks.next().unwrap())
        });
        res.results.remove(0)
    };
    let free_text = format!("{term_a} {term_b}");
    let boolean = Query::parse(&format!("{term_a} OR title:{term_b}")).unwrap();

    for p in [1usize, 4] {
        // In-memory reference: scan + invert + query, no snapshot at all.
        let reference: ServedAnswers = {
            let (src, cfg, free_text, boolean) =
                (src.clone(), cfg.clone(), free_text.clone(), boolean.clone());
            let mut res = Runtime::new(zero.clone()).run(p, move |ctx| {
                let s = scan(ctx, &src, &cfg);
                let idx = invert(ctx, &s, &cfg);
                answer_queries(ctx, &s, &idx, &free_text, &boolean)
            });
            res.results.remove(0)
        };

        // Snapshot route: run the engine at P, then serve on one rank.
        let path = snapshot_path(&format!("serve-p{p}"));
        let _ = std::fs::remove_file(&path);
        let snap_cfg = EngineConfig {
            snapshot_out: Some(path.clone()),
            ..cfg.clone()
        };
        run_engine(p, zero.clone(), &src, &snap_cfg);
        let snap = EngineSnapshot::open(&path).expect("snapshot loads");
        assert_eq!(snap.meta().nprocs, p);
        let served: ServedAnswers = {
            let (free_text, boolean) = (free_text.clone(), boolean.clone());
            let mut res = Runtime::new(zero.clone()).run(1, move |ctx| {
                let s = snap.restore_scan(ctx).expect("scan restores");
                let idx = snap.restore_index(ctx).expect("index restores");
                answer_queries(ctx, &s, &idx, &free_text, &boolean)
            });
            res.results.remove(0)
        };

        assert_eq!(
            served, reference,
            "P={p}: snapshot-served answers diverge from the in-memory run"
        );
        let _ = std::fs::remove_file(&path);
    }
}
