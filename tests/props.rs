//! Property-based tests (proptest) on the core data structures and
//! numeric kernels, across crate boundaries.

use proptest::prelude::*;
use visual_analytics::engine::linalg::{dist2, dot, jacobi_eigen};
use visual_analytics::engine::scan::{pack_entry, unpack_entry};
use visual_analytics::engine::tokenize::Tokenizer;
use visual_analytics::engine::topicality::bookstein_score;
use visual_analytics::prelude::*;

proptest! {
    #[test]
    fn partition_contiguous_covers_exactly_once(
        sizes in prop::collection::vec(0u64..10_000, 0..60),
        p in 1usize..12,
    ) {
        let parts = corpus::partition_contiguous(&sizes, p);
        prop_assert_eq!(parts.len(), p);
        let mut covered = Vec::new();
        for r in &parts {
            covered.extend(r.clone());
        }
        let expect: Vec<usize> = (0..sizes.len()).collect();
        prop_assert_eq!(covered, expect);
    }

    #[test]
    fn partition_lpt_assigns_exactly_once(
        sizes in prop::collection::vec(1u64..10_000, 0..60),
        p in 1usize..12,
    ) {
        let bins = corpus::partition_lpt(&sizes, p);
        let mut all: Vec<usize> = bins.iter().flatten().copied().collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..sizes.len()).collect();
        prop_assert_eq!(all, expect);
    }

    #[test]
    fn lpt_is_balanced_within_largest_item(
        sizes in prop::collection::vec(1u64..1_000, 1..60),
        p in 1usize..8,
    ) {
        let bins = corpus::partition_lpt(&sizes, p);
        let loads: Vec<u64> = bins
            .iter()
            .map(|b| b.iter().map(|&i| sizes[i]).sum())
            .collect();
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        let biggest = *sizes.iter().max().unwrap();
        // Classic LPT guarantee: spread bounded by the largest item.
        prop_assert!(max - min <= biggest);
    }

    #[test]
    fn tokenizer_output_is_normalized(text in ".{0,300}") {
        let t = Tokenizer::default();
        for term in t.tokenize(&text) {
            prop_assert!(term.len() >= 3 && term.len() <= 40);
            prop_assert!(term.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit()));
            prop_assert!(term.bytes().any(|b| b.is_ascii_alphabetic()));
        }
    }

    #[test]
    fn tokenizer_is_idempotent_on_its_output(text in "[a-zA-Z0-9 ,.;-]{0,200}") {
        let t = Tokenizer::default();
        let once = t.tokenize(&text);
        let rejoined = once.join(" ");
        let twice = t.tokenize(&rejoined);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn pack_entry_roundtrips(term in 0u32.., field in 0u8..8, freq in 0u32..0xFF_FFFF) {
        prop_assert_eq!(unpack_entry(pack_entry(term, field, freq)), (term, field, freq));
    }

    #[test]
    fn zipf_pmf_is_distribution(n in 1usize..400, s in 0.0f64..2.5) {
        let z = corpus::Zipf::new(n, s);
        let total: f64 = (0..n).map(|r| z.pmf(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        for r in 1..n {
            prop_assert!(z.pmf(r - 1) >= z.pmf(r) - 1e-12);
        }
    }

    #[test]
    fn bookstein_score_is_finite_and_nonnegative(
        df in 1u32..1000,
        extra_tf in 0u64..5000,
        docs in 1u32..100_000,
    ) {
        let df = df.min(docs);
        let tf = df as u64 + extra_tf; // tf >= df always holds in real data
        if let Some(s) = bookstein_score(df, tf, docs, 1, 1.0) {
            prop_assert!(s.is_finite());
            prop_assert!(s >= 0.0);
        }
    }

    #[test]
    fn jacobi_reconstructs_symmetric_matrices(
        vals in prop::collection::vec(-3.0f64..3.0, 6),
    ) {
        // Build a 3x3 symmetric matrix from 6 free entries.
        let a = vec![
            vals[0], vals[1], vals[2],
            vals[1], vals[3], vals[4],
            vals[2], vals[4], vals[5],
        ];
        let e = jacobi_eigen(&a, 3, 60);
        // Trace preserved.
        let trace = vals[0] + vals[3] + vals[5];
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8);
        // A v = lambda v for every pair.
        for (k, v) in e.vectors.iter().enumerate() {
            for i in 0..3 {
                let av: f64 = (0..3).map(|j| a[i * 3 + j] * v[j]).sum();
                prop_assert!((av - e.values[k] * v[i]).abs() < 1e-7);
            }
        }
        // Orthonormality.
        for i in 0..3 {
            for j in 0..3 {
                let d = dot(&e.vectors[i], &e.vectors[j]);
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((d - expect).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn terrain_is_normalized_for_any_points(
        points in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 0..80),
    ) {
        let t = Terrain::build(&points, 16, 12, None);
        prop_assert_eq!(t.heights.len(), 16 * 12);
        for &h in &t.heights {
            prop_assert!((0.0..=1.0).contains(&h));
        }
        if !points.is_empty() {
            let max = t.heights.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!((max - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn terrain_peak_cells_are_within_grid(
        points in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..60),
    ) {
        let t = Terrain::build(&points, 20, 20, None);
        for peak in t.peaks(10, 0.05, 2) {
            prop_assert!(peak.x < 20 && peak.y < 20);
            prop_assert!((0.0..=1.0).contains(&peak.height));
        }
    }

    #[test]
    fn dhashmap_batch_matches_scalar_sequence(
        raw in prop::collection::vec("[a-z]{1,10}", 1..100),
        p in 1usize..6,
    ) {
        use visual_analytics::ga::DistHashMap;

        // Scalar reference: one insert_or_get per term, in input order.
        let scalar_ids = {
            let raw = raw.clone();
            Runtime::for_testing()
                .run(p, move |ctx| {
                    let m = DistHashMap::create(ctx);
                    let mut ids = Vec::new();
                    if ctx.rank() == 0 {
                        for t in &raw {
                            ids.push(m.insert_or_get(ctx, t));
                        }
                    }
                    ctx.barrier();
                    ids
                })
                .results
                .swap_remove(0)
        };

        // Batched path on an identical fresh map, plus lookups afterwards.
        let (batch_ids, lookups) = {
            let raw = raw.clone();
            Runtime::for_testing()
                .run(p, move |ctx| {
                    let m = DistHashMap::create(ctx);
                    let mut out = (Vec::new(), Vec::new());
                    if ctx.rank() == 0 {
                        let refs: Vec<&str> = raw.iter().map(|s| s.as_str()).collect();
                        out.0 = m.insert_or_get_batch(ctx, &refs);
                        out.1 = raw.iter().map(|t| m.get(ctx, t)).collect();
                    }
                    ctx.barrier();
                    out
                })
                .results
                .swap_remove(0)
        };

        // Bit-identical ID assignment vs the scalar sequence.
        prop_assert_eq!(&batch_ids, &scalar_ids);

        // Lookup-after-insert agrees for every term.
        for (&id, look) in batch_ids.iter().zip(&lookups) {
            prop_assert_eq!(*look, Some(id));
        }

        // Duplicates share an ID; distinct terms never collide.
        let mut by_term = std::collections::HashMap::new();
        let mut by_id = std::collections::HashMap::new();
        for (t, &id) in raw.iter().zip(&batch_ids) {
            prop_assert_eq!(*by_term.entry(t.as_str()).or_insert(id), id);
            prop_assert_eq!(*by_id.entry(id).or_insert(t.as_str()), t.as_str());
        }

        // IDs are interleaved shard-dense: on each shard s the sequence
        // numbers {id / p : id % p == s} form 0..count(s) exactly.
        let mut per_shard: Vec<Vec<u32>> = vec![Vec::new(); p];
        for &id in by_id.keys() {
            per_shard[id as usize % p].push(id / p as u32);
        }
        for seqs in &mut per_shard {
            seqs.sort_unstable();
            for (expect, &got) in seqs.iter().enumerate() {
                prop_assert_eq!(got, expect as u32);
            }
        }
    }

    #[test]
    fn dist2_triangle_inequality_in_sqrt(
        a in prop::collection::vec(-5.0f64..5.0, 4),
        b in prop::collection::vec(-5.0f64..5.0, 4),
        c in prop::collection::vec(-5.0f64..5.0, 4),
    ) {
        let ab = dist2(&a, &b).sqrt();
        let bc = dist2(&b, &c).sqrt();
        let ac = dist2(&a, &c).sqrt();
        prop_assert!(ac <= ab + bc + 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Heavier properties: exercised with fewer cases.

    #[test]
    fn scaled_models_scale_time_linearly(nominal_mb in 1u64..64) {
        let src = CorpusSpec::pubmed(48 * 1024, 99).generate();
        let t1 = run_engine(
            2,
            std::sync::Arc::new(CostModel::pnnl_2007_scaled(
                nominal_mb << 20,
                src.total_bytes(),
            )),
            &src,
            &EngineConfig::for_testing(),
        )
        .virtual_time;
        let t2 = run_engine(
            2,
            std::sync::Arc::new(CostModel::pnnl_2007_scaled(
                (nominal_mb * 2) << 20,
                src.total_bytes(),
            )),
            &src,
            &EngineConfig::for_testing(),
        )
        .virtual_time;
        // Doubling nominal size roughly doubles time (communication is
        // sublinear, so allow 1.5-2.1).
        let ratio = t2 / t1;
        prop_assert!((1.5..=2.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn engine_deterministic_for_random_corpus_seeds(seed in 0u64..1000) {
        let src = CorpusSpec::trec(32 * 1024, seed).generate();
        let cfg = EngineConfig::for_testing();
        let a = run_sequential(&src, &cfg);
        let b = run_sequential(&src, &cfg);
        prop_assert_eq!(a.coords, b.coords);
        prop_assert_eq!(a.cluster_sizes, b.cluster_sizes);
    }
}
