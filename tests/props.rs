//! Property-based tests (proptest) on the core data structures and
//! numeric kernels, across crate boundaries.

use proptest::prelude::*;
use visual_analytics::engine::ann::{
    approx_dot, build_ivf, code_sums, dot_error_bound, dot_u8, dot_u8_ref, exhaustive, l2_norm,
    quantize_into, search, AnnIndexView, SearchStats,
};
use visual_analytics::engine::linalg::{dist2, dot, jacobi_eigen};
use visual_analytics::engine::scan::{pack_entry, unpack_entry};
use visual_analytics::engine::tokenize::Tokenizer;
use visual_analytics::engine::topicality::bookstein_score;
use visual_analytics::prelude::*;

proptest! {
    #[test]
    fn partition_contiguous_covers_exactly_once(
        sizes in prop::collection::vec(0u64..10_000, 0..60),
        p in 1usize..12,
    ) {
        let parts = corpus::partition_contiguous(&sizes, p);
        prop_assert_eq!(parts.len(), p);
        let mut covered = Vec::new();
        for r in &parts {
            covered.extend(r.clone());
        }
        let expect: Vec<usize> = (0..sizes.len()).collect();
        prop_assert_eq!(covered, expect);
    }

    #[test]
    fn partition_lpt_assigns_exactly_once(
        sizes in prop::collection::vec(1u64..10_000, 0..60),
        p in 1usize..12,
    ) {
        let bins = corpus::partition_lpt(&sizes, p);
        let mut all: Vec<usize> = bins.iter().flatten().copied().collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..sizes.len()).collect();
        prop_assert_eq!(all, expect);
    }

    #[test]
    fn lpt_is_balanced_within_largest_item(
        sizes in prop::collection::vec(1u64..1_000, 1..60),
        p in 1usize..8,
    ) {
        let bins = corpus::partition_lpt(&sizes, p);
        let loads: Vec<u64> = bins
            .iter()
            .map(|b| b.iter().map(|&i| sizes[i]).sum())
            .collect();
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        let biggest = *sizes.iter().max().unwrap();
        // Classic LPT guarantee: spread bounded by the largest item.
        prop_assert!(max - min <= biggest);
    }

    #[test]
    fn tokenizer_output_is_normalized(text in ".{0,300}") {
        let t = Tokenizer::default();
        for term in t.tokenize(&text) {
            prop_assert!(term.len() >= 3 && term.len() <= 40);
            prop_assert!(term.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit()));
            prop_assert!(term.bytes().any(|b| b.is_ascii_alphabetic()));
        }
    }

    #[test]
    fn tokenizer_is_idempotent_on_its_output(text in "[a-zA-Z0-9 ,.;-]{0,200}") {
        let t = Tokenizer::default();
        let once = t.tokenize(&text);
        let rejoined = once.join(" ");
        let twice = t.tokenize(&rejoined);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn pack_entry_roundtrips(term in 0u32.., field in 0u8..8, freq in 0u32..0xFF_FFFF) {
        prop_assert_eq!(unpack_entry(pack_entry(term, field, freq)), (term, field, freq));
    }

    #[test]
    fn zipf_pmf_is_distribution(n in 1usize..400, s in 0.0f64..2.5) {
        let z = corpus::Zipf::new(n, s);
        let total: f64 = (0..n).map(|r| z.pmf(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        for r in 1..n {
            prop_assert!(z.pmf(r - 1) >= z.pmf(r) - 1e-12);
        }
    }

    #[test]
    fn bookstein_score_is_finite_and_nonnegative(
        df in 1u32..1000,
        extra_tf in 0u64..5000,
        docs in 1u32..100_000,
    ) {
        let df = df.min(docs);
        let tf = df as u64 + extra_tf; // tf >= df always holds in real data
        if let Some(s) = bookstein_score(df, tf, docs, 1, 1.0) {
            prop_assert!(s.is_finite());
            prop_assert!(s >= 0.0);
        }
    }

    #[test]
    fn jacobi_reconstructs_symmetric_matrices(
        vals in prop::collection::vec(-3.0f64..3.0, 6),
    ) {
        // Build a 3x3 symmetric matrix from 6 free entries.
        let a = vec![
            vals[0], vals[1], vals[2],
            vals[1], vals[3], vals[4],
            vals[2], vals[4], vals[5],
        ];
        let e = jacobi_eigen(&a, 3, 60);
        // Trace preserved.
        let trace = vals[0] + vals[3] + vals[5];
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8);
        // A v = lambda v for every pair.
        for (k, v) in e.vectors.iter().enumerate() {
            for i in 0..3 {
                let av: f64 = (0..3).map(|j| a[i * 3 + j] * v[j]).sum();
                prop_assert!((av - e.values[k] * v[i]).abs() < 1e-7);
            }
        }
        // Orthonormality.
        for i in 0..3 {
            for j in 0..3 {
                let d = dot(&e.vectors[i], &e.vectors[j]);
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((d - expect).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn terrain_is_normalized_for_any_points(
        points in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 0..80),
    ) {
        let t = Terrain::build(&points, 16, 12, None);
        prop_assert_eq!(t.heights.len(), 16 * 12);
        for &h in &t.heights {
            prop_assert!((0.0..=1.0).contains(&h));
        }
        if !points.is_empty() {
            let max = t.heights.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!((max - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn terrain_peak_cells_are_within_grid(
        points in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..60),
    ) {
        let t = Terrain::build(&points, 20, 20, None);
        for peak in t.peaks(10, 0.05, 2) {
            prop_assert!(peak.x < 20 && peak.y < 20);
            prop_assert!((0.0..=1.0).contains(&peak.height));
        }
    }

    #[test]
    fn dhashmap_batch_matches_scalar_sequence(
        raw in prop::collection::vec("[a-z]{1,10}", 1..100),
        p in 1usize..6,
    ) {
        use visual_analytics::ga::DistHashMap;

        // Scalar reference: one insert_or_get per term, in input order.
        let scalar_ids = {
            let raw = raw.clone();
            Runtime::for_testing()
                .run(p, move |ctx| {
                    let m = DistHashMap::create(ctx);
                    let mut ids = Vec::new();
                    if ctx.rank() == 0 {
                        for t in &raw {
                            ids.push(m.insert_or_get(ctx, t));
                        }
                    }
                    ctx.barrier();
                    ids
                })
                .results
                .swap_remove(0)
        };

        // Batched path on an identical fresh map, plus lookups afterwards.
        let (batch_ids, lookups) = {
            let raw = raw.clone();
            Runtime::for_testing()
                .run(p, move |ctx| {
                    let m = DistHashMap::create(ctx);
                    let mut out = (Vec::new(), Vec::new());
                    if ctx.rank() == 0 {
                        let refs: Vec<&str> = raw.iter().map(|s| s.as_str()).collect();
                        out.0 = m.insert_or_get_batch(ctx, &refs);
                        out.1 = raw.iter().map(|t| m.get(ctx, t)).collect();
                    }
                    ctx.barrier();
                    out
                })
                .results
                .swap_remove(0)
        };

        // Bit-identical ID assignment vs the scalar sequence.
        prop_assert_eq!(&batch_ids, &scalar_ids);

        // Lookup-after-insert agrees for every term.
        for (&id, look) in batch_ids.iter().zip(&lookups) {
            prop_assert_eq!(*look, Some(id));
        }

        // Duplicates share an ID; distinct terms never collide.
        let mut by_term = std::collections::HashMap::new();
        let mut by_id = std::collections::HashMap::new();
        for (t, &id) in raw.iter().zip(&batch_ids) {
            prop_assert_eq!(*by_term.entry(t.as_str()).or_insert(id), id);
            prop_assert_eq!(*by_id.entry(id).or_insert(t.as_str()), t.as_str());
        }

        // IDs are interleaved shard-dense: on each shard s the sequence
        // numbers {id / p : id % p == s} form 0..count(s) exactly.
        let mut per_shard: Vec<Vec<u32>> = vec![Vec::new(); p];
        for &id in by_id.keys() {
            per_shard[id as usize % p].push(id / p as u32);
        }
        for seqs in &mut per_shard {
            seqs.sort_unstable();
            for (expect, &got) in seqs.iter().enumerate() {
                prop_assert_eq!(got, expect as u32);
            }
        }
    }

    #[test]
    fn u8_dot_kernel_matches_scalar_reference(
        pairs in prop::collection::vec((any::<u8>(), any::<u8>()), 0..400),
    ) {
        let a: Vec<u8> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<u8> = pairs.iter().map(|p| p.1).collect();
        prop_assert_eq!(dot_u8(&a, &b), dot_u8_ref(&a, &b));
    }

    #[test]
    fn quantized_dot_stays_within_error_bound(
        pairs in prop::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 1..200),
    ) {
        let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let m = a.len();
        let (mut ca, mut cb) = (vec![0u8; m], vec![0u8; m]);
        let pa = quantize_into(&a, &mut ca);
        let pb = quantize_into(&b, &mut cb);
        let sum_a: u32 = ca.iter().map(|&c| c as u32).sum();
        let sum_b: u32 = cb.iter().map(|&c| c as u32).sum();
        let approx = approx_dot(m, pa, sum_a, pb, sum_b, dot_u8(&ca, &cb));
        let l1_a: f64 = a.iter().map(|x| x.abs()).sum();
        let l1_b: f64 = b.iter().map(|x| x.abs()).sum();
        let exact = dot(&a, &b);
        prop_assert!(
            (approx - exact).abs() <= dot_error_bound(pa, pb, l1_a, l1_b, m),
            "approx {approx} exact {exact} bound {}",
            dot_error_bound(pa, pb, l1_a, l1_b, m)
        );
    }

    #[test]
    fn ivf_full_probe_matches_exhaustive_scan(
        rows in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 12), 1..50),
        k in 1usize..6,
        qpick in 0usize..4096,
    ) {
        let m = 12;
        let docs = rows.len();
        // L1-normalize each row, mirroring the engine's signatures.
        let mut sigs = vec![0.0f64; docs * m];
        for (d, row) in rows.iter().enumerate() {
            let l1: f64 = row.iter().sum();
            if l1 > 0.0 {
                for (j, &x) in row.iter().enumerate() {
                    sigs[d * m + j] = x / l1;
                }
            }
        }
        // Any assignment is valid IVF structure; centroid quality only
        // affects probe *order*, and nprobe = k probes everything.
        let assignments: Vec<u32> = (0..docs).map(|d| (d % k) as u32).collect();
        let mut centroids = vec![0.0f64; k * m];
        let mut counts = vec![0usize; k];
        for (d, &c) in assignments.iter().enumerate() {
            counts[c as usize] += 1;
            for j in 0..m {
                centroids[c as usize * m + j] += sigs[d * m + j];
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for j in 0..m {
                    centroids[c * m + j] /= counts[c] as f64;
                }
            }
        }
        let ivf = build_ivf(&sigs, m, &assignments, k);
        let sums = code_sums(&ivf.codes, m);
        let view = AnnIndexView::of(&ivf, &centroids, &sums, &sigs);
        let q = qpick % docs;
        let query = sigs[q * m..(q + 1) * m].to_vec();
        if l2_norm(&query) == 0.0 {
            continue; // null query: cosine undefined, nothing to rank
        }
        for top in [1usize, 5, docs] {
            let mut stats = SearchStats::default();
            let got = search(&view, &query, top, k, &mut stats);
            let want = exhaustive(&sigs, m, &query, top);
            prop_assert_eq!(stats.probed, k);
            prop_assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.doc, w.doc);
                prop_assert_eq!(g.score.to_bits(), w.score.to_bits());
            }
        }
    }

    #[test]
    fn dist2_triangle_inequality_in_sqrt(
        a in prop::collection::vec(-5.0f64..5.0, 4),
        b in prop::collection::vec(-5.0f64..5.0, 4),
        c in prop::collection::vec(-5.0f64..5.0, 4),
    ) {
        let ab = dist2(&a, &b).sqrt();
        let bc = dist2(&b, &c).sqrt();
        let ac = dist2(&a, &c).sqrt();
        prop_assert!(ac <= ab + bc + 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Heavier properties: exercised with fewer cases.

    #[test]
    fn scaled_models_scale_time_linearly(nominal_mb in 1u64..64) {
        let src = CorpusSpec::pubmed(48 * 1024, 99).generate();
        let t1 = run_engine(
            2,
            std::sync::Arc::new(CostModel::pnnl_2007_scaled(
                nominal_mb << 20,
                src.total_bytes(),
            )),
            &src,
            &EngineConfig::for_testing(),
        )
        .virtual_time;
        let t2 = run_engine(
            2,
            std::sync::Arc::new(CostModel::pnnl_2007_scaled(
                (nominal_mb * 2) << 20,
                src.total_bytes(),
            )),
            &src,
            &EngineConfig::for_testing(),
        )
        .virtual_time;
        // Doubling nominal size roughly doubles time (communication is
        // sublinear, so allow 1.5-2.1).
        let ratio = t2 / t1;
        prop_assert!((1.5..=2.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn engine_deterministic_for_random_corpus_seeds(seed in 0u64..1000) {
        let src = CorpusSpec::trec(32 * 1024, seed).generate();
        let cfg = EngineConfig::for_testing();
        let a = run_sequential(&src, &cfg);
        let b = run_sequential(&src, &cfg);
        prop_assert_eq!(a.coords, b.coords);
        prop_assert_eq!(a.cluster_sizes, b.cluster_sizes);
    }
}
