//! Comm-plane counter tests for the batched hot paths.
//!
//! Guarantees from the batching PRs, checked on a fixture corpus:
//!
//! 1. **Scan batching factor** — the scan stage's charged vocabulary
//!    RPC count drops at least 5x versus the scalar one-message-per-term
//!    discipline it replaced (the scan output carries both counts).
//! 2. **Index aggregation** — the index stage's aggregated exchange
//!    (batched cursor reservation + destination-packed posting puts)
//!    keeps the stage's message count under a fixed ceiling, far below
//!    the scalar-equivalent operation count it folds.
//! 3. **Width invariance** — charged message/byte counters are a
//!    function of the workload, not of the intra-rank pool width:
//!    `threads_per_rank` ∈ {1, 2, 4} must produce bit-identical
//!    per-stage counters on every rank.

use std::sync::Arc;
use visual_analytics::engine::index::invert;
use visual_analytics::engine::scan::scan;
use visual_analytics::perfmodel::CostModel;
use visual_analytics::prelude::*;
use visual_analytics::spmd::stats::CommStatsSnapshot;

const FIXTURE_BYTES: u64 = 64 * 1024;

/// Per-rank (stats snapshot, scan's batched RPC msgs, scalar-equiv count)
/// from a scan+invert run bracketed in its pipeline components.
fn comm_profile(
    src: &SourceSet,
    procs: usize,
    threads: usize,
) -> Vec<(CommStatsSnapshot, u64, u64)> {
    let rt = Runtime::new(Arc::new(CostModel::zero())).with_threads_per_rank(threads);
    let cfg = EngineConfig::for_testing();
    rt.run(procs, |ctx| {
        let s = ctx.component(Component::Scan, || scan(ctx, src, &cfg));
        let idx = ctx.component(Component::Index, || invert(ctx, &s, &cfg));
        assert!(idx.total_docs > 0);
        (
            ctx.stats.snapshot(),
            s.vocab_rpc_msgs,
            s.vocab_rpc_scalar_equiv,
        )
    })
    .results
}

#[test]
fn scan_vocab_rpcs_drop_at_least_5x_on_fixture_corpus() {
    let src = CorpusSpec::pubmed(FIXTURE_BYTES, 2007).generate();
    for procs in [1usize, 4] {
        let prof = comm_profile(&src, procs, 1);
        let batched: u64 = prof.iter().map(|r| r.1).sum();
        let scalar: u64 = prof.iter().map(|r| r.2).sum();
        assert!(batched > 0, "p={procs}: scan charged no vocabulary RPCs");
        assert!(
            scalar >= 5 * batched,
            "p={procs}: batching factor below 5x: {scalar} scalar-equivalent \
             inserts over {batched} charged messages"
        );
        // The stage counter includes those RPCs, so it must also sit far
        // below the scalar-equivalent count.
        let scan_msgs: u64 = prof
            .iter()
            .map(|r| r.0.stage_msgs_for(Component::Scan))
            .sum();
        assert!(
            scalar >= 5 * scan_msgs,
            "p={procs}: scan stage msgs {scan_msgs} vs scalar-equiv {scalar}"
        );
    }
}

#[test]
fn scan_stage_counters_attribute_to_scan_and_index() {
    let src = CorpusSpec::pubmed(FIXTURE_BYTES, 2007).generate();
    let prof = comm_profile(&src, 2, 1);
    for (rank, (snap, _, _)) in prof.iter().enumerate() {
        assert!(
            snap.stage_msgs_for(Component::Scan) > 0,
            "rank {rank}: no messages attributed to scan"
        );
        assert!(
            snap.stage_msgs_for(Component::Index) > 0,
            "rank {rank}: no messages attributed to index"
        );
        assert_eq!(
            snap.stage_msgs.iter().sum::<u64>(),
            snap.total_msgs(),
            "rank {rank}: stage attribution must cover every charged op"
        );
    }
}

/// Ceiling on the index stage's total charged message count on the
/// 64 KiB fixture, summed over all ranks, for P ∈ {1, 2, 4}. The
/// pre-aggregation scatter charged one read_inc per (term, load) plus
/// one put per posting run — thousands of messages on this fixture
/// (the scalar-equivalent counter records ~5,600 folded operations). The aggregated exchange pays O(P) messages per load, so a
/// fixed small ceiling holds at every P and catches any regression to
/// per-term traffic.
const INDEX_STAGE_MSG_CEILING: u64 = 1024;

#[test]
fn index_stage_msgs_under_fixed_ceiling() {
    let src = CorpusSpec::pubmed(FIXTURE_BYTES, 2007).generate();
    for procs in [1usize, 2, 4] {
        let prof = comm_profile(&src, procs, 1);
        let index_msgs: u64 = prof
            .iter()
            .map(|r| r.0.stage_msgs_for(Component::Index))
            .sum();
        let batched: u64 = prof
            .iter()
            .map(|r| r.0.stage_batched_msgs_for(Component::Index))
            .sum();
        let scalar_equiv: u64 = prof
            .iter()
            .map(|r| r.0.stage_scalar_equiv_for(Component::Index))
            .sum();
        eprintln!(
            "p={procs}: index_msgs={index_msgs} batched={batched} scalar_equiv={scalar_equiv}"
        );
        assert!(
            index_msgs <= INDEX_STAGE_MSG_CEILING,
            "p={procs}: index stage charged {index_msgs} messages, \
             ceiling is {INDEX_STAGE_MSG_CEILING}"
        );
        // The batched messages must stand in for far more scalar
        // operations than were actually charged: the aggregation is
        // doing real folding, not forwarding singleton batches.
        assert!(batched > 0, "p={procs}: no batched RPCs in index stage");
        assert!(
            scalar_equiv >= 10 * batched,
            "p={procs}: index batching factor below 10x: \
             {scalar_equiv} scalar-equivalent ops over {batched} batches"
        );
    }
}

#[test]
fn index_stage_msgs_invariant_in_pool_width() {
    let src = CorpusSpec::pubmed(FIXTURE_BYTES, 2007).generate();
    for procs in [1usize, 2] {
        let base: Vec<(u64, u64, u64)> = comm_profile(&src, procs, 1)
            .iter()
            .map(|r| {
                (
                    r.0.stage_msgs_for(Component::Index),
                    r.0.stage_batched_msgs_for(Component::Index),
                    r.0.stage_scalar_equiv_for(Component::Index),
                )
            })
            .collect();
        for threads in [2usize, 4] {
            let wide: Vec<(u64, u64, u64)> = comm_profile(&src, procs, threads)
                .iter()
                .map(|r| {
                    (
                        r.0.stage_msgs_for(Component::Index),
                        r.0.stage_batched_msgs_for(Component::Index),
                        r.0.stage_scalar_equiv_for(Component::Index),
                    )
                })
                .collect();
            assert_eq!(
                base, wide,
                "p={procs}: index-stage counters differ between \
                 threads_per_rank=1 and {threads}"
            );
        }
    }
}

#[test]
fn comm_counters_invariant_across_pool_widths() {
    let src = CorpusSpec::pubmed(FIXTURE_BYTES, 2007).generate();
    for procs in [1usize, 2] {
        let base = comm_profile(&src, procs, 1);
        for threads in [2usize, 4] {
            let wide = comm_profile(&src, procs, threads);
            assert_eq!(
                base, wide,
                "p={procs}: counters differ between threads_per_rank=1 and {threads}"
            );
        }
    }
}
