//! Robustness: the ingestion path (framers, parsers, sniffer, tokenizer,
//! engine) must never panic on malformed input — corpora come from the
//! outside world.

use proptest::prelude::*;
use std::sync::Arc;
use visual_analytics::prelude::*;

fn source(data: Vec<u8>, format: corpus::FormatKind) -> corpus::Source {
    corpus::Source {
        name: "fuzz".into(),
        data,
        format,
    }
}

proptest! {
    #[test]
    fn medline_framer_never_panics(data in prop::collection::vec(any::<u8>(), 0..2000)) {
        // Framing requires UTF-8; arbitrary bytes may be rejected by the
        // loader, so fuzz with lossy-sanitized input like the loader sees.
        let text = String::from_utf8_lossy(&data).into_owned();
        let s = source(text.into_bytes(), corpus::FormatKind::Medline);
        for r in s.record_ranges() {
            let doc = s.parse_record(r);
            // Every parsed field is valid UTF-8 by construction; names are
            // from the known set.
            for (name, _) in doc.fields {
                prop_assert!(visual_analytics::engine::field_id(name).is_some());
            }
        }
    }

    #[test]
    fn trec_framer_never_panics(data in "[ -~\\n]{0,2000}") {
        let s = source(data.into_bytes(), corpus::FormatKind::TrecWeb);
        for r in s.record_ranges() {
            let _ = s.parse_record(r);
        }
    }

    #[test]
    fn trec_framer_handles_adversarial_tags(
        n_open in 0usize..6,
        n_close in 0usize..6,
        middle in "[a-z<>/ ]{0,100}",
    ) {
        let mut data = String::new();
        for _ in 0..n_open {
            data.push_str("<DOC>");
        }
        data.push_str(&middle);
        for _ in 0..n_close {
            data.push_str("</DOC>");
        }
        let s = source(data.into_bytes(), corpus::FormatKind::TrecWeb);
        // Framing must terminate and produce non-overlapping ranges.
        let ranges = s.record_ranges();
        for w in ranges.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
    }

    #[test]
    fn sniffer_never_panics(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = corpus::sniff_format(&data);
    }

    #[test]
    fn tokenizer_handles_unicode(text in "\\PC{0,120}") {
        // Non-ASCII must be treated as delimiters, never panic or split
        // inside a UTF-8 sequence.
        let t = visual_analytics::engine::tokenize::Tokenizer::default();
        for term in t.tokenize(&text) {
            prop_assert!(term.is_ascii());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn engine_survives_arbitrary_printable_corpora(
        a in "[ -~\\n]{0,600}",
        b in "[ -~\\n]{0,600}",
    ) {
        // Wrap the fuzz in minimal valid framing so there is at least the
        // chance of records, then run the full engine.
        let m = format!("PMID- 1\nTI  - {a}\nAB  - {b}\n\n");
        let t = format!("<DOC>\n<DOCNO>F1</DOCNO>\n<DOCHDR>\nu\n</DOCHDR>\n{b}\n</DOC>\n");
        let set = corpus::SourceSet {
            sources: vec![
                source(m.into_bytes(), corpus::FormatKind::Medline),
                source(t.into_bytes(), corpus::FormatKind::TrecWeb),
            ],
        };
        let out = run_engine(
            2,
            Arc::new(CostModel::zero()),
            &set,
            &EngineConfig::for_testing(),
        );
        let master = out.master();
        prop_assert_eq!(
            master.coords.as_ref().unwrap().len() as u32,
            master.summary.total_docs
        );
    }
}

#[test]
fn engine_handles_corpus_with_no_valid_terms() {
    // Records exist but every token is filtered (too short / numeric).
    let data = b"PMID- 1\nTI  - a b c 1 2 3\nAB  - x y z 42\n\nPMID- 2\nTI  - 9 8 7\nAB  - q w\n\n";
    let set = corpus::SourceSet {
        sources: vec![source(data.to_vec(), corpus::FormatKind::Medline)],
    };
    let out = run_engine(
        2,
        Arc::new(CostModel::zero()),
        &set,
        &EngineConfig::for_testing(),
    );
    let master = out.master();
    assert_eq!(master.summary.total_docs, 2);
    assert_eq!(master.summary.vocab_size, 0);
    // Coordinates still exist (all at the origin of a degenerate space).
    assert_eq!(master.coords.as_ref().unwrap().len(), 2);
}

#[test]
fn engine_handles_empty_source_list() {
    let set = corpus::SourceSet { sources: vec![] };
    let out = run_engine(
        3,
        Arc::new(CostModel::zero()),
        &set,
        &EngineConfig::for_testing(),
    );
    let master = out.master();
    assert_eq!(master.summary.total_docs, 0);
    assert!(master.coords.as_ref().unwrap().is_empty());
}
