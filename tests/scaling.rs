//! Virtual-time scaling properties: the qualitative claims of the paper's
//! evaluation, asserted as tests on small corpora with scaled models.

use std::sync::Arc;
use visual_analytics::prelude::*;

fn scaled_model(src: &SourceSet, nominal_gb: f64) -> Arc<CostModel> {
    Arc::new(CostModel::pnnl_2007_scaled(
        (nominal_gb * (1u64 << 30) as f64) as u64,
        src.total_bytes(),
    ))
}

fn time_at(src: &SourceSet, model: &Arc<CostModel>, p: usize) -> f64 {
    run_engine(p, model.clone(), src, &EngineConfig::for_testing()).virtual_time
}

#[test]
fn wall_clock_decreases_with_processors() {
    let src = CorpusSpec::pubmed(192 * 1024, 5).generate();
    let model = scaled_model(&src, 2.75);
    let mut prev = f64::INFINITY;
    for p in [1, 2, 4, 8] {
        let t = time_at(&src, &model, p);
        assert!(t < prev, "P={p}: {t} !< {prev}");
        prev = t;
    }
}

#[test]
fn speedup_is_sane_and_substantial() {
    let src = CorpusSpec::trec(192 * 1024, 6).generate();
    let model = scaled_model(&src, 1.0);
    let t1 = time_at(&src, &model, 1);
    for p in [2usize, 4, 8] {
        let s = t1 / time_at(&src, &model, p);
        assert!(
            s <= p as f64 * 1.05,
            "superlinear without memory effects: {s} at P={p}"
        );
        assert!(
            s >= 0.6 * p as f64,
            "parallel efficiency collapsed: {s} at P={p}"
        );
    }
}

#[test]
fn larger_nominal_datasets_take_longer() {
    let src = CorpusSpec::pubmed(128 * 1024, 7).generate();
    let small = time_at(&src, &scaled_model(&src, 1.0), 4);
    let large = time_at(&src, &scaled_model(&src, 4.0), 4);
    assert!(
        large > 3.0 * small,
        "4x nominal data must cost ~4x: {small} vs {large}"
    );
}

#[test]
fn memory_anomaly_hits_small_processor_counts() {
    // The Figure 5 anomaly: a dataset whose working set exceeds per-proc
    // memory at P=4 but fits at P=8 shows a superlinear drop.
    let src = CorpusSpec::pubmed(128 * 1024, 8).generate();
    let model = scaled_model(&src, 16.44);
    let t4 = time_at(&src, &model, 4);
    let t8 = time_at(&src, &model, 8);
    assert!(
        t4 / t8 > 3.0,
        "expected superlinear relief from memory pressure: {t4} vs {t8}"
    );
    // Beyond the anomaly the usual ~2x per doubling returns.
    let t16 = time_at(&src, &model, 16);
    let ratio = t8 / t16;
    assert!((1.4..3.0).contains(&ratio), "P=8→16 ratio {ratio}");
}

#[test]
fn component_percentages_are_stable_in_p() {
    let src = CorpusSpec::pubmed(192 * 1024, 9).generate();
    let model = scaled_model(&src, 2.75);
    let mut shares = Vec::new();
    for p in [2usize, 8] {
        let run = run_engine(p, model.clone(), &src, &EngineConfig::for_testing());
        let ct = run.components;
        shares.push(ct.get(Component::Scan) / ct.total());
    }
    // Scan's share should not swing wildly between P=2 and P=8 (the
    // paper's "percentage of time spent in each component remains
    // constant").
    let drift = (shares[0] - shares[1]).abs() / shares[0];
    assert!(drift < 0.25, "scan share drifted {drift}: {shares:?}");
}

#[test]
fn slower_network_slows_communication_bound_stages() {
    let src = CorpusSpec::pubmed(128 * 1024, 10).generate();
    let mut ib = CostModel::pnnl_2007_scaled(4 << 30, src.total_bytes());
    ib.cluster.network = perfmodel::Network::infiniband_sdr();
    let mut eth = ib.clone();
    eth.cluster.network = perfmodel::Network::gigabit_ethernet();
    let cfg = EngineConfig::for_testing();
    let run_ib = run_engine(8, Arc::new(ib), &src, &cfg);
    let run_eth = run_engine(8, Arc::new(eth), &src, &cfg);
    assert!(run_eth.virtual_time > run_ib.virtual_time);
    let infl = |r: &visual_analytics::prelude::EngineRun, c: Component| r.components.get(c);
    let index_ratio = infl(&run_eth, Component::Index) / infl(&run_ib, Component::Index);
    let scan_ratio = infl(&run_eth, Component::Scan) / infl(&run_ib, Component::Scan);
    let topic_ratio = infl(&run_eth, Component::Topic) / infl(&run_ib, Component::Topic);
    // Index still moves every posting over the wire, so its excess
    // inflation must dwarf the compute/IO-dominated scan stage's.
    assert!(
        index_ratio - 1.0 > 5.0 * (scan_ratio - 1.0),
        "index {index_ratio} vs scan {scan_ratio}"
    );
    // But the aggregated scatter exchange pays O(P) messages per load,
    // not O(terms), so the index stage is no longer the most
    // latency-bound: the topicality stage's vocabulary-length allreduce
    // now inflates more on the slow network than the scatter does.
    assert!(
        topic_ratio > index_ratio,
        "topic {topic_ratio} vs index {index_ratio}: scatter regressed to latency-bound"
    );
}

#[test]
fn dynamic_balancing_beats_static_on_heterogeneous_data() {
    let src = CorpusSpec::trec(256 * 1024, 11).generate();
    let model = scaled_model(&src, 1.0);
    let mut times = Vec::new();
    for balancing in [Balancing::Static, Balancing::Dynamic] {
        let cfg = EngineConfig {
            balancing,
            chunk_docs: 4,
            ..EngineConfig::for_testing()
        };
        times.push(run_engine(8, model.clone(), &src, &cfg).virtual_time);
    }
    assert!(
        times[1] <= times[0] * 1.001,
        "dynamic ({}) must not lose to static ({})",
        times[1],
        times[0]
    );
}

#[test]
fn scan_io_becomes_visible_at_scale() {
    // With a shared filesystem, total scan I/O time is constant in P, so
    // the scan component's parallel efficiency falls at high P.
    let src = CorpusSpec::pubmed(192 * 1024, 12).generate();
    let model = scaled_model(&src, 6.67);
    let cfg = EngineConfig::for_testing();
    let scan1 = run_engine(1, model.clone(), &src, &cfg)
        .components
        .get(Component::Scan);
    let scan16 = run_engine(16, model.clone(), &src, &cfg)
        .components
        .get(Component::Scan);
    let speedup = scan1 / scan16;
    assert!(speedup > 8.0, "scan speedup collapsed: {speedup}");
    assert!(speedup < 15.9, "scan shows no I/O effect at all: {speedup}");
}
