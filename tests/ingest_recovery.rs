//! Crash-recovery and merge-on-read equivalence tests for the live
//! ingestion subsystem.
//!
//! The contracts under test, end to end:
//!
//! 1. **Durable prefix, exactly** — for a WAL truncated at every record
//!    boundary and at every byte of its final record, replay recovers
//!    precisely the records whose frames survive intact and truncates
//!    the rest; no crash point loses a durable record or resurrects a
//!    torn one.
//! 2. **Kill-mid-ingest ≡ clean run** — after a crash between WAL
//!    durability and sealing (and a second crash tearing the WAL tail),
//!    reopening the directory seals the durable prefix, and the merged
//!    view serves bodies byte-identical to a from-scratch rebuild of
//!    that prefix — with the rebuild run at P=1 **and** P=4.
//! 3. **Compaction is invisible** — folding all segments into one
//!    changes no served byte, and stray files from a simulated
//!    compaction crash are removed on the next open.
//! 4. **Tombstones** — a deleted document vanishes from every posting
//!    enumeration (term, boolean, ranked) before and after compaction,
//!    while df/total_docs keep LSM stats semantics (unchanged until a
//!    full rebuild folds the base).

use std::path::{Path, PathBuf};
use std::sync::Arc;
use visual_analytics::engine::pipeline::run_engine;
use visual_analytics::engine::query::{Query, SearchIndex};
use visual_analytics::engine::EngineConfig;
use visual_analytics::ingest::{IngestDir, Wal, WalRecord, WAL_FILE};
use visual_analytics::perfmodel::CostModel;
use visual_analytics::prelude::{CorpusSpec, SourceSet};
use visual_analytics::serve::{execute, load_live_state, ServeRequest, ServeState};

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("va-ingest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// Full pipeline at processor count `procs` with `snapshot_out` set.
fn build_snapshot(set: &SourceSet, out: &Path, procs: usize) {
    let cfg = EngineConfig {
        snapshot_out: Some(out.to_path_buf()),
        ..EngineConfig::for_testing()
    };
    let run = run_engine(procs, Arc::new(CostModel::zero()), set, &cfg);
    assert!(
        run.master().snapshot_report.is_some(),
        "snapshot write failed"
    );
}

/// Mixed term/boolean/search requests over the state's vocabulary.
fn build_requests(state: &ServeState) -> Vec<ServeRequest> {
    let len = state.terms.len();
    let mut terms: Vec<String> = Vec::new();
    for k in 0..len * 2 {
        let t = state.terms.get((len / 7 + k) % len);
        if t.len() >= 2
            && t.chars().all(|c| c.is_ascii_alphanumeric())
            && !matches!(t, "and" | "or" | "not")
            && !terms.iter().any(|o| o == t)
        {
            terms.push(t.to_string());
            if terms.len() == 8 {
                break;
            }
        }
    }
    assert!(terms.len() >= 2, "vocabulary too small for query mix");
    let mut out = Vec::new();
    for pair in terms.chunks(2) {
        out.push(ServeRequest::Term {
            term: pair[0].clone(),
            top: 10,
        });
        if pair.len() == 2 {
            let expr = Query::parse(&format!("{} AND {}", pair[0], pair[1])).unwrap();
            out.push(ServeRequest::Boolean { expr, top: 10 });
            out.push(ServeRequest::Search {
                text: format!("{} {}", pair[0], pair[1]),
                top: 5,
            });
        }
    }
    out
}

fn bodies(state: &ServeState, requests: &[ServeRequest]) -> Vec<String> {
    requests
        .iter()
        .map(|r| execute(state, r).expect("request executes"))
        .collect()
}

fn medline(name: &str, text: &str) -> corpus::Source {
    corpus::Source {
        name: name.into(),
        data: text.as_bytes().to_vec(),
        format: corpus::FormatKind::Medline,
    }
}

/// Contract 1: sweep every crash point of a multi-record WAL — each
/// record boundary, plus every byte inside the final record — and check
/// that reopening recovers exactly the durable prefix.
#[test]
fn replay_recovers_exact_durable_prefix_at_every_crash_point() {
    let template = tmp_dir("sweep-template");
    let mut ing = IngestDir::create(&template, None).expect("create");
    let batches = [
        medline("a", "TI  - alpha beta gamma\nAB  - alpha words here\n\n"),
        medline("b", "TI  - delta beta\nAB  - more delta text\n\n"),
        medline("c", "TI  - epsilon gamma\nAB  - epsilon body\n\n"),
        medline("d", "TI  - zeta alpha\nAB  - zeta tail record\n\n"),
    ];
    let mut ends: Vec<u64> = Vec::new();
    for src in &batches {
        ends.push(
            ing.append_wal(&WalRecord::AddBatch(src.clone()))
                .expect("wal append"),
        );
    }
    drop(ing);
    let wal_bytes = std::fs::read(template.join(WAL_FILE)).expect("read wal");
    let manifest_bytes =
        std::fs::read(template.join(inspire_ingest::MANIFEST_FILE)).expect("read manifest");

    // Crash points: every record boundary (including 0 and EOF), plus
    // every byte offset inside the last record's frame.
    let mut cuts: Vec<u64> = vec![0];
    cuts.extend_from_slice(&ends);
    cuts.extend(ends[2] + 1..ends[3]);
    let trial = tmp_dir("sweep-trial");
    for cut in cuts {
        let _ = std::fs::remove_dir_all(&trial);
        std::fs::create_dir_all(&trial).unwrap();
        std::fs::write(trial.join(inspire_ingest::MANIFEST_FILE), &manifest_bytes).unwrap();
        std::fs::write(trial.join(WAL_FILE), &wal_bytes[..cut as usize]).unwrap();

        let durable = ends.iter().filter(|&&e| e <= cut).count();
        let ing = IngestDir::open(&trial).expect("recovery open");
        assert_eq!(
            ing.recovery.sealed_records, durable,
            "crash at byte {cut}: wrong durable prefix"
        );
        assert_eq!(ing.total_docs(), durable as u32);
        assert_eq!(ing.manifest().segments.len(), durable);
        // The torn tail is gone: the WAL now ends at the last durable
        // record, and a second open has nothing left to repair.
        let expect_len = ends.get(durable.wrapping_sub(1)).copied().unwrap_or(0);
        assert_eq!(Wal::new(trial.join(WAL_FILE)).len().unwrap(), expect_len);
        drop(ing);
        let again = IngestDir::open(&trial).expect("idempotent reopen");
        assert_eq!(again.recovery.sealed_records, 0);
        assert_eq!(again.recovery.torn_bytes, 0);
    }
    let _ = std::fs::remove_dir_all(&template);
    let _ = std::fs::remove_dir_all(&trial);
}

/// Contracts 2 and 3: the flagship kill-mid-ingest scenario, then
/// compaction on top of it.
#[test]
fn killed_ingest_replays_to_clean_rebuild_bodies() {
    let dir = tmp_dir("kill");
    let set = CorpusSpec::pubmed(96 * 1024, 11).generate();
    let n = set.sources.len();
    assert!(n >= 8, "need at least 8 sources, got {n}");
    let base_half = n / 2;
    let base_set = SourceSet {
        sources: set.sources[..base_half].to_vec(),
    };
    let base_path = dir.join("base.isnap");
    build_snapshot(&base_set, &base_path, 1);

    // Batch 1 ingests cleanly; batch 2 crashes after WAL durability
    // (records never sealed); batch 3 lands, then the tail of its last
    // record is torn off mid-frame.
    let rest = &set.sources[base_half..];
    let third = rest.len().div_ceil(3);
    let (b1, b23) = rest.split_at(third);
    let (b2, b3) = b23.split_at(third.min(b23.len()));
    let live = dir.join("live");
    let mut ing = IngestDir::create(&live, Some(&base_path)).expect("create");
    for src in b1 {
        ing.append(src.clone()).expect("sealed append");
    }
    for src in b2 {
        ing.append_wal(&WalRecord::AddBatch(src.clone()))
            .expect("durable append");
    }
    let mut last_end = 0;
    for src in b3 {
        last_end = ing
            .append_wal(&WalRecord::AddBatch(src.clone()))
            .expect("durable append");
    }
    drop(ing); // crash: b2 + b3 durable but unsealed
    let wal_path = live.join(WAL_FILE);
    let wal = std::fs::read(&wal_path).unwrap();
    assert_eq!(wal.len() as u64, last_end);
    std::fs::write(&wal_path, &wal[..wal.len() - 7]).unwrap(); // torn tail

    let ing = IngestDir::open(&live).expect("recovery");
    assert_eq!(
        ing.recovery.sealed_records,
        b2.len() + b3.len() - 1,
        "replay must seal every durable record and only those"
    );
    assert!(ing.recovery.torn_bytes > 0);
    drop(ing);

    // The logical corpus after recovery: everything except the torn
    // final record. A clean rebuild of it — at P=1 and at P=4 — must
    // serve the same bytes the merged view serves.
    let survived = SourceSet {
        sources: set.sources[..n - 1].to_vec(),
    };
    let live_state = load_live_state(&live).expect("merged view");
    assert_eq!(live_state.total_docs(), {
        let clean: u32 = survived
            .sources
            .iter()
            .map(|s| s.record_ranges().len() as u32)
            .sum();
        clean
    });
    let requests = build_requests(&live_state);
    let live_bodies = bodies(&live_state, &requests);
    for procs in [1usize, 4] {
        let clean_path = dir.join(format!("clean-p{procs}.isnap"));
        build_snapshot(&survived, &clean_path, procs);
        let clean_state = ServeState::load(&clean_path).expect("clean load");
        assert_eq!(
            bodies(&clean_state, &requests),
            live_bodies,
            "merged view diverged from the P={procs} rebuild"
        );
    }

    // Contract 3: compaction changes nothing; strays vanish on reopen.
    let mut ing = IngestDir::open(&live).expect("reopen");
    let before = ing.manifest().segments.len();
    assert!(before > 1);
    ing.compact().expect("compact").expect("folds");
    assert_eq!(ing.manifest().segments.len(), 1);
    drop(ing);
    let compacted = load_live_state(&live).expect("compacted view");
    assert_eq!(compacted.segments_open(), 1);
    assert_eq!(
        bodies(&compacted, &requests),
        live_bodies,
        "compaction changed served bytes"
    );

    std::fs::write(live.join("seg-999999.iseg"), b"stray").unwrap();
    std::fs::write(live.join("seg-000001.iseg.tmp"), b"half-written").unwrap();
    let ing = IngestDir::open(&live).expect("stray cleanup open");
    assert_eq!(ing.recovery.removed_strays, 2);
    assert!(!live.join("seg-999999.iseg").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Contract 2 without any crash: plain incremental ingestion equals the
/// full rebuild, at P=1 and P=4.
#[test]
fn merge_on_read_matches_full_rebuild() {
    let dir = tmp_dir("merge");
    let set = CorpusSpec::pubmed(96 * 1024, 23).generate();
    let half = set.sources.len() / 2;
    let base_set = SourceSet {
        sources: set.sources[..half].to_vec(),
    };
    let base_path = dir.join("base.isnap");
    build_snapshot(&base_set, &base_path, 1);
    let live = dir.join("live");
    let mut ing = IngestDir::create(&live, Some(&base_path)).expect("create");
    for src in &set.sources[half..] {
        ing.append(src.clone()).expect("append");
    }
    drop(ing);

    let live_state = load_live_state(&live).expect("merged view");
    let requests = build_requests(&live_state);
    let live_bodies = bodies(&live_state, &requests);
    for procs in [1usize, 4] {
        let clean_path = dir.join(format!("clean-p{procs}.isnap"));
        build_snapshot(&set, &clean_path, procs);
        let clean_state = ServeState::load(&clean_path).expect("clean load");
        assert_eq!(
            bodies(&clean_state, &requests),
            live_bodies,
            "merged view diverged from the P={procs} rebuild"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Contract 4: tombstoned documents disappear from enumeration while
/// stats keep LSM semantics, before and after compaction.
#[test]
fn tombstones_hide_deleted_docs_across_compaction() {
    let dir = tmp_dir("tomb");
    let base_set = SourceSet {
        sources: vec![
            medline(
                "base0",
                "TI  - shared topic alpha\nAB  - alpha base words\n\n",
            ),
            medline(
                "base1",
                "TI  - shared topic beta\nAB  - beta base words\n\n",
            ),
        ],
    };
    let base_path = dir.join("base.isnap");
    build_snapshot(&base_set, &base_path, 1);
    let live = dir.join("live");
    let mut ing = IngestDir::create(&live, Some(&base_path)).expect("create");
    ing.append(medline(
        "inc0",
        "TI  - shared topic gamma\nAB  - gamma incoming words\n\n",
    ))
    .expect("append");

    let before = load_live_state(&live).expect("view");
    let topic = before.term_id("topic").expect("'topic' indexed");
    let victim = before.total_docs() - 1; // the ingested doc
    let pre_docs: Vec<u32> = before.postings_of(topic).iter().map(|p| p.doc).collect();
    assert!(pre_docs.contains(&victim));
    let df_before = before.df(topic);
    let total_before = before.total_docs();

    ing.delete(vec![victim]).expect("delete");
    drop(ing);
    for compacted in [false, true] {
        if compacted {
            let mut ing = IngestDir::open(&live).expect("reopen");
            ing.compact().expect("compact").expect("folds");
        }
        let after = load_live_state(&live).expect("view");
        let docs: Vec<u32> = after.postings_of(topic).iter().map(|p| p.doc).collect();
        assert!(
            !docs.contains(&victim),
            "tombstoned doc still served (compacted={compacted})"
        );
        let hits = visual_analytics::engine::query::search_in(&after, "shared topic", 10);
        assert!(hits.iter().all(|h| h.doc != victim));
        // LSM stats semantics: deletion rescales nothing until a full
        // rebuild folds the base.
        assert_eq!(after.df(topic), df_before);
        assert_eq!(after.total_docs(), total_before);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
