//! Parallel-vs-sequential oracle tests.
//!
//! The strongest correctness statement the reproduction makes: for any
//! processor count, the parallel engine computes the *same analysis* as a
//! sequential execution — identical vocabulary, topics, signatures (up to
//! floating-point summation order), cluster structure, and 2-D layout.

use std::sync::Arc;
use visual_analytics::prelude::*;

fn pubmed() -> SourceSet {
    CorpusSpec::pubmed(192 * 1024, 2024).generate()
}

fn trec() -> SourceSet {
    CorpusSpec::trec(192 * 1024, 4048).generate()
}

fn run_p(sources: &SourceSet, p: usize) -> EngineOutput {
    run_engine(
        p,
        Arc::new(CostModel::zero()),
        sources,
        &EngineConfig::for_testing(),
    )
    .outputs
    .remove(0)
}

fn assert_equivalent(a: &EngineOutput, b: &EngineOutput, label: &str) {
    assert_eq!(
        a.summary.vocab_size, b.summary.vocab_size,
        "{label}: vocab size"
    );
    assert_eq!(
        a.summary.total_docs, b.summary.total_docs,
        "{label}: doc count"
    );
    assert_eq!(
        a.summary.total_tokens, b.summary.total_tokens,
        "{label}: token count"
    );
    assert_eq!(a.summary.n_major, b.summary.n_major, "{label}: N");
    assert_eq!(a.summary.m_dims, b.summary.m_dims, "{label}: M");
    assert_eq!(a.cluster_sizes, b.cluster_sizes, "{label}: cluster sizes");
    assert_eq!(a.cluster_labels, b.cluster_labels, "{label}: labels");
    let ca = a.coords.as_ref().expect("master coords");
    let cb = b.coords.as_ref().expect("master coords");
    assert_eq!(ca.len(), cb.len(), "{label}: coordinate count");
    for (i, ((x1, y1), (x2, y2))) in ca.iter().zip(cb).enumerate() {
        assert!(
            (x1 - x2).abs() < 1e-6 && (y1 - y2).abs() < 1e-6,
            "{label}: doc {i} moved: ({x1},{y1}) vs ({x2},{y2})"
        );
    }
    let aa = a.all_assignments.as_ref().unwrap();
    let ab = b.all_assignments.as_ref().unwrap();
    assert_eq!(aa, ab, "{label}: assignments");
}

#[test]
fn pubmed_parallel_matches_sequential() {
    let src = pubmed();
    let seq = run_sequential(&src, &EngineConfig::for_testing());
    for p in [2, 3, 5] {
        let par = run_p(&src, p);
        assert_equivalent(&par, &seq, &format!("PubMed P={p}"));
    }
}

#[test]
fn trec_parallel_matches_sequential() {
    let src = trec();
    let seq = run_sequential(&src, &EngineConfig::for_testing());
    for p in [2, 4] {
        let par = run_p(&src, p);
        assert_equivalent(&par, &seq, &format!("TREC P={p}"));
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    // Thread scheduling varies between runs; results must not.
    let src = pubmed();
    let a = run_p(&src, 4);
    let b = run_p(&src, 4);
    assert_eq!(a.coords, b.coords);
    assert_eq!(a.cluster_sizes, b.cluster_sizes);
    assert_eq!(a.all_assignments, b.all_assignments);
}

#[test]
fn balancing_modes_agree_on_results() {
    // Load balancing changes who does the work, never the answer.
    let src = trec();
    let mut outputs = Vec::new();
    for balancing in [
        Balancing::Static,
        Balancing::Dynamic,
        Balancing::MasterWorker,
    ] {
        let cfg = EngineConfig {
            balancing,
            ..EngineConfig::for_testing()
        };
        outputs.push(
            run_engine(3, Arc::new(CostModel::zero()), &src, &cfg)
                .outputs
                .remove(0),
        );
    }
    assert_equivalent(&outputs[0], &outputs[1], "static vs dynamic");
    assert_equivalent(&outputs[0], &outputs[2], "static vs master-worker");
}

#[test]
fn virtual_time_does_not_affect_results() {
    // The cost model only prices time; the computation must be identical
    // under any model.
    let src = pubmed();
    let cfg = EngineConfig::for_testing();
    let free = run_engine(3, Arc::new(CostModel::zero()), &src, &cfg)
        .outputs
        .remove(0);
    let priced = run_engine(
        3,
        Arc::new(CostModel::pnnl_2007_scaled(1 << 34, src.total_bytes())),
        &src,
        &cfg,
    )
    .outputs
    .remove(0);
    assert_equivalent(&free, &priced, "zero vs priced model");
}
