//! End-to-end integration: corpus → engine → ThemeView, plus the query
//! path, across crate boundaries.

use std::sync::Arc;
use visual_analytics::engine::index::invert;
use visual_analytics::engine::query;
use visual_analytics::engine::scan::scan;
use visual_analytics::prelude::*;

fn run(sources: &SourceSet, p: usize) -> EngineRun {
    run_engine(
        p,
        Arc::new(CostModel::pnnl_2007()),
        sources,
        &EngineConfig::for_testing(),
    )
}

#[test]
fn full_pipeline_to_terrain_pubmed() {
    let src = CorpusSpec::pubmed(256 * 1024, 77).generate();
    let stats = CorpusStats::measure(&src);
    let run = run(&src, 4);
    let master = run.master();

    // Every record the corpus framer sees must come out as a document.
    assert_eq!(master.summary.total_docs as usize, stats.records);
    let coords = master.coords.as_ref().unwrap();
    assert_eq!(coords.len(), stats.records);

    // Cluster bookkeeping is consistent.
    assert_eq!(
        master.cluster_sizes.iter().sum::<u64>(),
        stats.records as u64
    );
    let assignments = master.all_assignments.as_ref().unwrap();
    for &a in assignments {
        assert!((a as usize) < master.cluster_sizes.len());
    }
    // Per-cluster counts match assignments.
    let mut counted = vec![0u64; master.cluster_sizes.len()];
    for &a in assignments {
        counted[a as usize] += 1;
    }
    assert_eq!(&counted, &master.cluster_sizes);

    // A terrain built from the coordinates has structure: some relief and
    // at least one peak.
    let terrain = Terrain::build(coords, 48, 24, None);
    let peaks = terrain.peaks(8, 0.2, 4);
    assert!(!peaks.is_empty(), "no theme mountains found");
    assert!(peaks[0].height > 0.9);

    // Rendering works and has the right dimensions.
    let art = render_ascii(&terrain, &peaks);
    assert_eq!(art.lines().count(), 24);
    let pgm = render_pgm(&terrain);
    assert!(pgm.starts_with("P2\n48 24\n255\n"));
}

#[test]
fn full_pipeline_trec_with_markup_noise() {
    let src = CorpusSpec::trec(256 * 1024, 55).generate();
    let run = run(&src, 3);
    let master = run.master();
    assert!(master.summary.total_docs > 50);
    // Markup stopwords must not become topics.
    for labels in &master.cluster_labels {
        for term in labels {
            assert!(term != "html" && term != "body" && term != "href", "{term}");
        }
    }
    // Virtual time is positive and finite.
    assert!(run.virtual_time.is_finite() && run.virtual_time > 0.0);
}

#[test]
fn query_path_integrates_with_engine_structures() {
    let src = CorpusSpec::pubmed(128 * 1024, 33).generate();
    let rt = Runtime::new(Arc::new(CostModel::pnnl_2007()));
    let cfg = EngineConfig::for_testing();
    rt.run(3, |ctx| {
        let s = scan(ctx, &src, &cfg);
        let idx = invert(ctx, &s, &cfg);
        // Query by the most frequent term that is not ubiquitous (a term
        // in every document has zero idf and therefore zero score).
        let top_term = (0..s.vocab_size())
            .filter(|&t| idx.df[t] * 2 < idx.total_docs)
            .max_by_key(|&t| idx.tf[t])
            .expect("nonempty vocabulary");
        let term = s.terms[top_term].to_string();
        let hits = query::search(ctx, &s, &idx, &term, 10);
        assert!(!hits.is_empty());
        // All hits reference real documents.
        for h in &hits {
            assert!(h.doc < idx.total_docs);
            assert!(h.score > 0.0);
        }
        // Lookup agrees with df.
        let postings = query::lookup(ctx, &s, &idx, &term);
        let mut docs: Vec<u32> = postings.iter().map(|p| p.doc).collect();
        docs.dedup();
        assert_eq!(docs.len() as u32, idx.df[top_term]);
    });
}

#[test]
fn component_times_cover_the_run() {
    let src = CorpusSpec::pubmed(128 * 1024, 31).generate();
    let run = run(&src, 2);
    let ct = run.components;
    // Components account for (almost) all virtual time; "other" is small.
    let total = ct.total();
    assert!(total > 0.0);
    assert!(
        (total - run.virtual_time).abs() / run.virtual_time < 0.05,
        "components {total} vs wall {}",
        run.virtual_time
    );
    let other = ct.get(Component::Other);
    assert!(other / total < 0.02, "untracked time {other} of {total}");
}

#[test]
fn engine_handles_single_document_corpus() {
    // Degenerate input: one tiny source with one record.
    let mut src = CorpusSpec::pubmed(4 * 1024, 1).generate();
    // Truncate to the first record of the first source.
    let first = &src.sources[0];
    let ranges = first.record_ranges();
    let end = ranges[0].end;
    src.sources.truncate(1);
    src.sources[0].data.truncate(end);

    let run = run_engine(
        2,
        Arc::new(CostModel::zero()),
        &src,
        &EngineConfig::for_testing(),
    );
    let master = run.master();
    assert_eq!(master.summary.total_docs, 1);
    assert_eq!(master.coords.as_ref().unwrap().len(), 1);
}

#[test]
fn more_ranks_than_documents() {
    let mut src = CorpusSpec::pubmed(8 * 1024, 9).generate();
    src.sources.truncate(1);
    let run = run_engine(
        8,
        Arc::new(CostModel::zero()),
        &src,
        &EngineConfig::for_testing(),
    );
    let master = run.master();
    assert!(master.summary.total_docs >= 1);
    assert_eq!(
        master.coords.as_ref().unwrap().len() as u32,
        master.summary.total_docs
    );
}

#[test]
fn full_pipeline_newswire_message_traffic() {
    // The third motivating data type of the paper's introduction:
    // "newswire feeds and message traffic". Short threaded messages.
    let src = CorpusSpec::newswire(256 * 1024, 314).generate();
    let run = run(&src, 3);
    let master = run.master();
    assert!(
        master.summary.total_docs > 300,
        "messages are short: expected many"
    );
    let coords = master.coords.as_ref().unwrap();
    assert_eq!(coords.len() as u32, master.summary.total_docs);
    // Threads make message traffic extra bursty; topicality must still
    // find discriminating terms and clustering must spread documents.
    assert!(master.summary.n_major > 50);
    let nonempty = master.cluster_sizes.iter().filter(|&&s| s > 0).count();
    assert!(
        nonempty >= 3,
        "clusters collapsed: {:?}",
        master.cluster_sizes
    );
}

#[test]
fn newswire_parallel_matches_sequential() {
    let src = CorpusSpec::newswire(128 * 1024, 217).generate();
    let cfg = EngineConfig::for_testing();
    let seq = run_sequential(&src, &cfg);
    let par = run_engine(4, Arc::new(CostModel::zero()), &src, &cfg)
        .outputs
        .remove(0);
    assert_eq!(par.summary.vocab_size, seq.summary.vocab_size);
    assert_eq!(par.cluster_sizes, seq.cluster_sizes);
    let cs = seq.coords.as_ref().unwrap();
    let cp = par.coords.as_ref().unwrap();
    for ((x1, y1), (x2, y2)) in cp.iter().zip(cs) {
        assert!((x1 - x2).abs() < 1e-6 && (y1 - y2).abs() < 1e-6);
    }
}
