//! End-to-end checks of the observability stack: tracing produces a
//! valid, balanced Chrome trace at any P; the structured run report
//! carries every field the analysis consumes; and — the hard
//! guarantee — turning tracing on changes *no* algorithmic output bit.

use std::sync::Arc;
use visual_analytics::engine::build_run_report;
use visual_analytics::prelude::*;

fn run_traced(src: &SourceSet, nprocs: usize, trace: bool) -> EngineRun {
    let cfg = EngineConfig {
        trace,
        ..EngineConfig::for_testing()
    };
    run_engine(nprocs, Arc::new(CostModel::pnnl_2007()), src, &cfg)
}

/// Everything deterministically comparable about a run (same exclusions
/// as `thread_determinism`: virtual clocks and per-rank load stats
/// jitter by host scheduling even without tracing).
fn fingerprint(run: &EngineRun) -> String {
    let master = run.master();
    let s = &master.summary;
    format!(
        "vocab={} docs={} tokens={} n={} m={} exp={} sig={:?} iters={} \
         obj={:?} var={:?} coords={:?} assignments={:?} labels={:?} sizes={:?}",
        s.vocab_size,
        s.total_docs,
        s.total_tokens,
        s.n_major,
        s.m_dims,
        s.dim_expansions,
        s.sig_stats,
        s.kmeans_iters,
        s.kmeans_objective,
        s.variance_explained,
        master.coords,
        master.all_assignments,
        master.cluster_labels,
        master.cluster_sizes,
    )
}

#[test]
fn tracing_is_bit_invisible_to_engine_output() {
    let src = CorpusSpec::pubmed(256 * 1024, 1717).generate();
    for nprocs in [1, 4] {
        let plain = run_traced(&src, nprocs, false);
        let traced = run_traced(&src, nprocs, true);
        assert_eq!(
            fingerprint(&plain),
            fingerprint(&traced),
            "tracing at P={nprocs} perturbed the engine output"
        );
        assert!(plain.run.traces.iter().all(|t| t.events.is_empty()));
        assert!(traced.run.traces.iter().any(|t| !t.events.is_empty()));
    }
}

#[test]
fn engine_trace_exports_valid_chrome_json() {
    let src = CorpusSpec::pubmed(192 * 1024, 33).generate();
    for nprocs in [1, 4] {
        let run = run_traced(&src, nprocs, true);
        let json = inspire_trace::chrome::to_chrome_json(&run.run.traces);
        let summary =
            inspire_trace::chrome::validate_chrome_json(&json).expect("trace JSON validates");
        assert_eq!(summary.lanes, nprocs, "one lane per rank at P={nprocs}");
        assert!(summary.spans > 0, "engine run produced no spans");
    }
}

#[test]
fn run_report_json_has_required_keys() {
    let src = CorpusSpec::pubmed(192 * 1024, 33).generate();
    let run = run_traced(&src, 4, false);
    let report = build_run_report("observability-test", &run.run, 0.25);
    let doc = inspire_trace::json::parse(&report.to_json()).expect("report JSON parses");
    for key in [
        "title",
        "meta",
        "virtual_time_s",
        "wall_time_s",
        "critical_path_s",
        "critical_path_stage",
        "max_imbalance_pct",
        "stages",
        "comm",
        "queries",
    ] {
        assert!(doc.get(key).is_some(), "report missing {key}");
    }
    let stages = doc.get("stages").unwrap().as_arr().unwrap();
    assert_eq!(stages.len(), Component::ALL.len());
    for row in stages {
        for key in [
            "name",
            "virt_max_s",
            "busy_max_s",
            "wall_max_s",
            "wait_max_s",
            "imbalance_pct",
            "wait_share_pct",
            "critical_share_pct",
        ] {
            assert!(row.get(key).is_some(), "stage row missing {key}");
        }
    }
    // Virtual stage times are deterministic model quantities, so they
    // must match the run's own component accounting exactly.
    assert!(doc.get("virtual_time_s").unwrap().as_f64().unwrap() > 0.0);
    let comm = doc.get("comm").unwrap();
    assert!(comm.get("messages").unwrap().as_f64().unwrap() > 0.0);
    assert!(comm.get("bytes").unwrap().as_f64().unwrap() > 0.0);
}
