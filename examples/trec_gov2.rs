//! TREC GOV2-style analysis: heterogeneous web data and scaling.
//!
//! The GOV2 crawl stresses the engine differently from PubMed: documents
//! are heavy-tailed (stubs next to enormous pages) and wrapped in markup.
//! This example processes a GOV2-like corpus at several simulated
//! processor counts, printing the wall-clock and per-component profile —
//! a miniature of the paper's Figures 5 and 7.
//!
//! ```text
//! cargo run --release --example trec_gov2
//! ```

use std::sync::Arc;
use visual_analytics::prelude::*;

fn main() {
    let sources = CorpusSpec::trec(2 * 1024 * 1024, 11).generate();
    let stats = CorpusStats::measure(&sources);
    println!(
        "GOV2-like corpus: {:.1} MB, {} documents (mean {:.0} terms, max {} — note the tail)\n",
        stats.bytes as f64 / 1e6,
        stats.records,
        stats.mean_record_tokens,
        stats.max_record_tokens
    );

    // Declare this corpus a stand-in for the paper's 1 GB TREC subset:
    // compute charges scale by the byte ratio, communication by the
    // Heaps-law vocabulary ratio.
    let nominal = 1 << 30;
    let config = EngineConfig::default();

    println!(
        "{:>6} {:>12} {:>9}   components (% of total)",
        "procs", "virtual", "speedup"
    );
    let mut t1 = None;
    for p in [1usize, 2, 4, 8, 16, 32] {
        let model = Arc::new(CostModel::pnnl_2007_scaled(nominal, sources.total_bytes()));
        let run = run_engine(p, model, &sources, &config);
        let t = run.virtual_time;
        let t1 = *t1.get_or_insert(t);
        let ct = run.components;
        let total = ct.total().max(1e-9);
        let pct = |c: Component| 100.0 * ct.get(c) / total;
        println!(
            "{:>6} {:>10.1} s {:>8.1}x   scan {:>4.1} | index {:>4.1} | topic {:>4.1} | AM {:>4.1} | DocVec {:>4.1} | ClusProj {:>4.1}",
            p,
            t,
            t1 / t,
            pct(Component::Scan),
            pct(Component::Index),
            pct(Component::Topic),
            pct(Component::Assoc),
            pct(Component::DocVec),
            pct(Component::ClusProj),
        );
    }

    println!(
        "\n(virtual seconds on the modeled 2007 Itanium/InfiniBand cluster; the\n\
         corpus stands in for a 1 GB GOV2 subset via the workload scale)"
    );
}
