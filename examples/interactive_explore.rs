//! An interactive analyst session: the paper's "next frontier" (§6).
//!
//! Simulates the core ThemeView interaction loop: build the global
//! landscape, lasso the tallest theme mountain, and drill down — the
//! selected documents are re-analyzed from scratch (their own topic
//! space, clustering, and projection), revealing sub-themes that the
//! global view aggregates away. Results of each level are persisted the
//! way the paper's engine does (coordinates CSV, signature matrix).
//!
//! ```text
//! cargo run --release --example interactive_explore
//! ```

use inspire_core::hierarchy::Linkage;
use inspire_core::interact::{select_radius, subset_corpus};
use inspire_core::io::{read_coords_csv, write_coords_csv};
use inspire_core::ClusterMethod;
use std::sync::Arc;
use visual_analytics::prelude::*;

fn show_level(name: &str, run: &EngineRun) -> (Vec<(f64, f64)>, Vec<u32>) {
    let master = run.master();
    let coords = master.coords.clone().expect("master coords");
    let assignments = master.all_assignments.clone().expect("master assignments");
    println!(
        "[{name}] {} docs, {} themes, N={} M={}",
        master.summary.total_docs,
        master.cluster_sizes.iter().filter(|&&s| s > 0).count(),
        master.summary.n_major,
        master.summary.m_dims
    );
    let terrain = Terrain::build(&coords, 64, 22, None);
    let peaks = terrain.peaks(5, 0.25, 6);
    println!("{}", render_ascii(&terrain, &peaks));
    let mut order: Vec<usize> = (0..master.cluster_sizes.len()).collect();
    order.sort_by_key(|&c| std::cmp::Reverse(master.cluster_sizes[c]));
    for &c in order.iter().take(4) {
        if master.cluster_sizes[c] > 0 {
            println!(
                "    theme {:>5} docs: {}",
                master.cluster_sizes[c],
                master.cluster_labels[c].join(", ")
            );
        }
    }
    (coords, assignments)
}

fn main() {
    let sources = CorpusSpec::pubmed(3 * 1024 * 1024, 2718).generate();
    let model = Arc::new(CostModel::pnnl_2007());

    // ---- Level 0: the global landscape (hierarchical clustering with an
    // adaptive cut, one of the §3.5 alternatives) ----
    let config = EngineConfig {
        cluster_method: ClusterMethod::Hierarchical {
            linkage: Linkage::Average,
            fine_factor: 4,
            adaptive: false,
        },
        ..EngineConfig::default()
    };
    let global = run_engine(8, model.clone(), &sources, &config);
    let (coords, _assignments) = show_level("global", &global);

    // Persist the primary product, as the paper's master process does.
    let coords_path = std::path::Path::new("explore_global.csv");
    write_coords_csv(
        coords_path,
        &coords,
        global.master().all_assignments.as_deref(),
    )
    .expect("write coords");
    let reloaded = read_coords_csv(coords_path).expect("read back");
    assert_eq!(reloaded.len(), coords.len());
    println!("    (coordinates persisted to {})\n", coords_path.display());

    // ---- The analyst lassos the tallest mountain ----
    let terrain = Terrain::build(&coords, 64, 22, None);
    let peaks = terrain.peaks(3, 0.2, 6);
    let peak = &peaks[0];
    let (bx0, by0, bx1, by1) = terrain.bounds;
    let radius = 0.18 * ((bx1 - bx0).powi(2) + (by1 - by0).powi(2)).sqrt();
    let selected = select_radius(&coords, peak.at, radius);
    println!(
        "analyst lassos the tallest mountain at ({:.3}, {:.3}): {} documents selected\n",
        peak.at.0,
        peak.at.1,
        selected.len()
    );

    // ---- Level 1: drill-down — full re-analysis of the selection ----
    let sub_corpus = subset_corpus(&sources, &selected);
    let drill = run_engine(8, model, &sub_corpus, &EngineConfig::default());
    show_level("drill-down", &drill);
    println!(
        "    sub-analysis virtual time: {:.2} s on 8 procs of the 2007 cluster",
        drill.virtual_time
    );

    std::fs::remove_file(coords_path).ok();
}
