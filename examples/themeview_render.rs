//! Reproduce the paper's Figure 2 artifact: a ThemeView terrain — and its
//! companion Galaxy view.
//!
//! Runs the engine on a themed corpus and writes the landscape in every
//! rendering: ASCII to stdout, plus `themeview.pgm`, `themeview.csv`,
//! `themeview.svg` (filled contour bands with labeled peaks) and
//! `galaxy.svg` (cluster-colored document scatter).
//!
//! ```text
//! cargo run --release --example themeview_render
//! ```

use std::sync::Arc;
use themeview::svg::SvgOptions;
use themeview::{render_galaxy_ascii, render_galaxy_svg, render_svg};
use visual_analytics::prelude::*;

fn main() {
    let sources = CorpusSpec::pubmed(2 * 1024 * 1024, 99).generate();
    let run = run_engine(
        4,
        Arc::new(CostModel::pnnl_2007()),
        &sources,
        &EngineConfig::default(),
    );
    let master = run.master();
    let coords = master.coords.clone().expect("rank 0 holds coordinates");

    let terrain = Terrain::build(&coords, 96, 40, None);
    let peaks = terrain.peaks(8, 0.2, 8);

    println!("{}", render_ascii(&terrain, &peaks));
    println!("peaks (tallest first):");
    for (i, p) in peaks.iter().enumerate() {
        println!(
            "  {}: height {:.2} at ({:.3}, {:.3})",
            i + 1,
            p.height,
            p.at.0,
            p.at.1
        );
    }

    std::fs::write("themeview.pgm", render_pgm(&terrain)).expect("write pgm");
    std::fs::write("themeview.csv", render_csv(&terrain)).expect("write csv");

    // SVG terrain with contour bands and labeled peaks.
    let assignments = master
        .all_assignments
        .as_ref()
        .expect("rank 0 gathers assignments");
    let peak_labels: Vec<String> = peaks
        .iter()
        .map(|p| {
            // Label each peak with the dominant cluster's top term.
            let mut counts = vec![0usize; master.cluster_sizes.len()];
            let r = 0.08
                * ((terrain.bounds.2 - terrain.bounds.0).powi(2)
                    + (terrain.bounds.3 - terrain.bounds.1).powi(2))
                .sqrt();
            for ((x, y), &c) in coords.iter().zip(assignments) {
                if ((x - p.at.0).powi(2) + (y - p.at.1).powi(2)).sqrt() < r {
                    counts[c as usize] += 1;
                }
            }
            let dominant = counts
                .iter()
                .enumerate()
                .max_by_key(|&(_, n)| *n)
                .map(|(c, _)| c)
                .unwrap_or(0);
            master.cluster_labels[dominant]
                .first()
                .cloned()
                .unwrap_or_default()
        })
        .collect();
    let svg = render_svg(
        &terrain,
        &peaks,
        &SvgOptions {
            peak_labels,
            ..Default::default()
        },
    );
    std::fs::write("themeview.svg", svg).expect("write svg");

    // Galaxy: the document-level companion view.
    println!("\nGalaxy view (documents by cluster, @ = centroid hubs):\n");
    println!(
        "{}",
        render_galaxy_ascii(coords.as_slice(), assignments, 96, 30)
    );
    let labels: Vec<String> = master
        .cluster_labels
        .iter()
        .map(|l| l.first().cloned().unwrap_or_default())
        .collect();
    let galaxy = render_galaxy_svg(coords.as_slice(), assignments, &labels, 900);
    std::fs::write("galaxy.svg", galaxy).expect("write galaxy svg");

    println!("wrote themeview.pgm, themeview.csv, themeview.svg, galaxy.svg");
}
