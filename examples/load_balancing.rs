//! Dynamic load balancing in action (the paper's Figure 9 story).
//!
//! Static byte-balanced partitioning equalizes *bytes*, but GOV2-like web
//! data has heavy-tailed documents, so inversion work (postings) lands
//! unevenly. This example runs the indexing stage under all three
//! balancing strategies and prints each rank's scatter-phase time — watch
//! dynamic chunking flatten the profile while static owner-computes
//! leaves stragglers, and master-worker pays the centralized-queue tax.
//!
//! ```text
//! cargo run --release --example load_balancing
//! ```

use inspire_core::index::invert;
use inspire_core::scan::scan;
use inspire_core::{Balancing, EngineConfig};
use std::sync::Arc;
use visual_analytics::prelude::*;

fn main() {
    let sources = CorpusSpec::trec(2 * 1024 * 1024, 3).generate();
    println!(
        "indexing a {:.1} MB GOV2-like corpus (standing in for 2 GB) on 8 simulated processors\n",
        sources.total_bytes() as f64 / 1e6
    );

    let p = 8;
    let nominal: u64 = 2 << 30;
    for balancing in [
        Balancing::Static,
        Balancing::Dynamic,
        Balancing::MasterWorker,
    ] {
        // threads_per_rank speeds up the host-side scan/count loops; the
        // virtual load figures printed below are identical at any width.
        let config = EngineConfig {
            balancing,
            chunk_docs: 8,
            threads_per_rank: 2,
            ..EngineConfig::default()
        };
        let model = Arc::new(CostModel::pnnl_2007_scaled(nominal, sources.total_bytes()));
        let rt = Runtime::new(model).with_threads_per_rank(config.threads_per_rank);
        let res = rt.run(p, |ctx| {
            let s = scan(ctx, &sources, &config);
            let idx = invert(ctx, &s, &config);
            idx.load
        });
        let load = &res.results[0];
        let times: Vec<f64> = load.iter().map(|l| l.seconds).collect();
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        println!("{balancing:?} balancing — per-rank scatter time:");
        for (r, l) in load.iter().enumerate() {
            let bar_len = if max > 0.0 {
                (l.seconds / max * 46.0).round() as usize
            } else {
                0
            };
            println!(
                "  rank {r}: {:>7.2} s |{:<46}| own {:>3}, stolen {:>3}, {:>7} postings",
                l.seconds,
                "#".repeat(bar_len),
                l.own_tasks,
                l.stolen_tasks,
                l.postings
            );
        }
        println!(
            "  imbalance (max/mean): {:.2}\n",
            if mean > 0.0 { max / mean } else { 1.0 }
        );
    }
}
