//! PubMed-style analysis session: the paper's motivating scenario.
//!
//! An analyst wants the gist of a biomedical abstract collection without
//! reading it: which themes dominate, how are they related, and which
//! documents should be read first for a given interest. This example runs
//! the full pipeline on a PubMed-like corpus, reports the discovered
//! topics and clusters, and finishes with a ranked retrieval against the
//! engine's inverted index — the "identify the pertinent documents for
//! reading" workflow of §2.1.
//!
//! ```text
//! cargo run --release --example pubmed_analysis
//! ```

use inspire_core::index::invert;
use inspire_core::query::search;
use inspire_core::scan::scan;
use inspire_core::topicality::select_topics;
use inspire_core::EngineConfig;
use std::sync::Arc;
use visual_analytics::prelude::*;

fn main() {
    let sources = CorpusSpec::pubmed(3 * 1024 * 1024, 7).generate();
    println!(
        "analyzing a {:.1} MB PubMed-like collection…\n",
        sources.total_bytes() as f64 / 1e6
    );

    // ---- Full pipeline for the thematic overview ----
    let config = EngineConfig::default();
    let run = run_engine(8, Arc::new(CostModel::pnnl_2007()), &sources, &config);
    let master = run.master();

    println!("collection overview:");
    println!("  documents        : {}", master.summary.total_docs);
    println!("  vocabulary       : {}", master.summary.vocab_size);
    println!("  major terms (N)  : {}", master.summary.n_major);
    println!("  topic dims  (M)  : {}", master.summary.m_dims);
    println!(
        "  null/weak sigs   : {}/{}",
        master.summary.sig_stats.null, master.summary.sig_stats.weak
    );
    println!(
        "  dim expansions   : {} (adaptive dimensionality, §4.2)",
        master.summary.dim_expansions
    );

    println!("\ndiscovered themes (cluster → size, top terms):");
    let mut order: Vec<usize> = (0..master.cluster_sizes.len()).collect();
    order.sort_by_key(|&c| std::cmp::Reverse(master.cluster_sizes[c]));
    for &c in order.iter().take(8) {
        if master.cluster_sizes[c] == 0 {
            continue;
        }
        println!(
            "  #{c:<2} {:>5} docs — {}",
            master.cluster_sizes[c],
            master.cluster_labels[c].join(", ")
        );
    }

    // ---- Ranked retrieval against the inverted index ----
    // Reuse the scanning/indexing stages directly to demonstrate the
    // index as a standalone product.
    let rt = Runtime::new(Arc::new(CostModel::pnnl_2007()));
    let res = rt.run(4, |ctx| {
        let s = scan(ctx, &sources, &config);
        let idx = invert(ctx, &s, &config);
        let topics = select_topics(ctx, &idx, &config, config.n_major, config.m_dims());
        // Query: the two strongest topics.
        let query: Vec<String> = topics
            .topics
            .iter()
            .take(2)
            .map(|&t| s.terms[t as usize].to_string())
            .collect();
        let query = query.join(" ");
        let hits = search(ctx, &s, &idx, &query, 5);
        (query, hits)
    });
    let (query, hits) = &res.results[0];
    println!("\nranked retrieval for the top topics ({query:?}):");
    for h in hits {
        println!("  doc {:>6}  score {:.3}", h.doc, h.score);
    }

    println!(
        "\nvirtual processing time on 8 procs of the 2007 cluster: {:.1} s",
        run.virtual_time
    );
}
