//! Quickstart: corpus in, ThemeView out.
//!
//! Generates a small PubMed-like corpus, runs the full parallel text
//! processing engine on a handful of simulated cluster processors, and
//! prints the resulting theme landscape with labeled peaks.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use visual_analytics::prelude::*;

fn main() {
    // 1. A 2 MB PubMed-flavoured corpus (deterministic from the seed).
    let spec = CorpusSpec::pubmed(2 * 1024 * 1024, 42);
    let sources = spec.generate();
    let stats = CorpusStats::measure(&sources);
    println!(
        "corpus: {} records, {:.1} MB, {} distinct terms",
        stats.records,
        stats.bytes as f64 / 1e6,
        stats.distinct_terms
    );

    // 2. Run the engine on 8 simulated processors of the paper's cluster.
    //    `threads_per_rank` fans each rank's hot loops across host
    //    threads; it speeds up wall-clock only — every result, including
    //    the virtual time below, is bit-identical at any width.
    let nprocs = 8;
    let model = Arc::new(CostModel::pnnl_2007());
    let config = EngineConfig {
        threads_per_rank: 2,
        ..EngineConfig::default()
    };
    let run = run_engine(nprocs, model, &sources, &config);

    let master = run.master();
    let s = &master.summary;
    println!(
        "engine: {} docs, vocab {}, N={} major terms, M={} dims, {} k-means iters",
        s.total_docs, s.vocab_size, s.n_major, s.m_dims, s.kmeans_iters
    );
    println!(
        "virtual time on {} procs of the modeled 2007 cluster: {:.1} s",
        nprocs, run.virtual_time
    );

    // 3. Build and print the ThemeView terrain.
    let coords = master.coords.clone().expect("rank 0 gathers coordinates");
    let assignments = master
        .all_assignments
        .as_ref()
        .expect("rank 0 gathers assignments");
    let terrain = Terrain::build(&coords, 72, 28, None);
    let peaks = terrain.peaks(6, 0.25, 6);
    println!("\n{}", render_ascii(&terrain, &peaks));

    // 4. Label the mountains with their dominant cluster themes.
    let (bx0, by0, bx1, by1) = terrain.bounds;
    let radius = 0.06 * ((bx1 - bx0).powi(2) + (by1 - by0).powi(2)).sqrt();
    println!("theme peaks:");
    for (i, peak) in peaks.iter().enumerate() {
        // The documents under the peak decide the label.
        let mut counts = vec![0usize; master.cluster_sizes.len()];
        for ((x, y), &c) in coords.iter().zip(assignments) {
            let dx = x - peak.at.0;
            let dy = y - peak.at.1;
            if (dx * dx + dy * dy).sqrt() < radius {
                counts[c as usize] += 1;
            }
        }
        let dominant = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(i, _)| i)
            .unwrap_or(0);
        let labels = master
            .cluster_labels
            .get(dominant)
            .map(|l| l.join(", "))
            .unwrap_or_default();
        println!("  {}. height {:.2} — {}", i + 1, peak.height, labels);
    }
}
